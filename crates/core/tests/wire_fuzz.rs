//! Hostile-input hardening for `wire::decode_response` and
//! `wire::decode_delta_batch`: truncated buffers, oversized length
//! prefixes, lying op counters, and bit-flips anywhere in the buffer
//! must produce errors (or verification failures for semantic fields),
//! never panics or unbounded allocations.

use vbx_core::{
    check_freshness, decode_compact_response, decode_delta_batch, decode_response,
    decode_wal_record, encode_compact_response, encode_delta_batch, encode_response,
    encode_wal_commit_batch, encode_wal_commit_op, encode_wal_heartbeat, execute, execute_compact,
    AuthScheme, ClientVerifier, CompactPart, CompactResponse, CostMeter, DeltaBatch,
    FreshnessPolicy, FreshnessStamp, RangeQuery, ResponseFreshness, SignedDelta, UpdateOp,
    VbScheme, VbTree, VbTreeConfig, VerifyError, VoOp, MAX_VO_STACK,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Table;

struct Fixture {
    tree: VbTree<4>,
    signer: MockSigner,
    table: Table,
    acc: Acc256,
}

fn fixture(rows: u64) -> Fixture {
    let table = WorkloadSpec::new(rows, 3, 8).build();
    let signer = MockSigner::new(11);
    let acc = Acc256::test_default();
    let tree = VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);
    Fixture {
        tree,
        signer,
        table,
        acc,
    }
}

/// A stamped response + its encoding, as an honest cluster edge would
/// ship it.
fn stamped_bytes(f: &Fixture, q: &RangeQuery) -> (vbx_core::QueryResponse<4>, Vec<u8>) {
    let mut resp = execute(&f.tree, q, None);
    resp.freshness = ResponseFreshness {
        applied_seq: 3,
        stamp: Some(FreshnessStamp::sign(&f.signer, 3, 7)),
    };
    let bytes = encode_response(&resp);
    (resp, bytes)
}

#[test]
fn every_truncation_errors_never_panics() {
    let f = fixture(24);
    let (_, bytes) = stamped_bytes(&f, &RangeQuery::select_all(0, 15));
    for cut in 0..bytes.len() {
        assert!(
            decode_response(&bytes[..cut], &f.acc).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    assert!(decode_response(&bytes, &f.acc).is_ok());
}

#[test]
fn oversized_length_prefixes_error_without_blowup() {
    let f = fixture(16);
    let (_, bytes) = stamped_bytes(&f, &RangeQuery::select_all(0, 7));

    // Row count (offset 4): claim 2^32-1 rows in a tiny buffer.
    let mut huge_rows = bytes.clone();
    huge_rows[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(decode_response(&huge_rows, &f.acc).is_err());

    // First row's arity (offset 8 + 8): claim 65535 values.
    let mut huge_arity = bytes.clone();
    huge_arity[16..18].copy_from_slice(&u16::MAX.to_be_bytes());
    assert!(decode_response(&huge_arity, &f.acc).is_err());

    // Stamp signature length (last u16 before the signature bytes):
    // claim a signature longer than the buffer.
    let sig_len_at = bytes.len() - 32 - 2;
    let mut huge_sig = bytes.clone();
    huge_sig[sig_len_at..sig_len_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
    assert!(decode_response(&huge_sig, &f.acc).is_err());

    // Every count field zeroed/maxed at once still terminates quickly.
    let mut chaos = bytes;
    for w in chaos.chunks_exact_mut(5) {
        w[0] ^= 0xFF;
    }
    let _ = decode_response(&chaos, &f.acc); // outcome irrelevant; no panic/OOM
}

#[test]
fn single_bit_flips_never_panic_decode_or_verify() {
    let f = fixture(20);
    let q = RangeQuery::select_all(2, 13);
    let (_, bytes) = stamped_bytes(&f, &q);
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = bytes.clone();
            flipped[i] ^= bit;
            // Either the decoder rejects the buffer, or the decoded
            // response goes through full verification — neither path
            // may panic.
            if let Ok(resp) = decode_response(&flipped, &f.acc) {
                let _ = client.verify(f.signer.verifier().as_ref(), &q, &resp);
            }
        }
    }
}

#[test]
fn stamp_seq_bitflips_are_rejected_by_freshness_verification() {
    let f = fixture(20);
    let q = RangeQuery::select_all(2, 13);
    let (resp, bytes) = stamped_bytes(&f, &q);
    let stamp = resp.freshness.stamp.as_ref().unwrap();
    // Freshness section layout (from the end): sig | sig_len u16 |
    // key_version u32 | clock u64 | seq u64.
    let seq_at = bytes.len() - stamp.sig.len() - 2 - 4 - 8 - 8;
    let client = ClientVerifier::new(&f.acc, f.table.schema());

    for bit in 0..8u32 {
        let mut flipped = bytes.clone();
        flipped[seq_at + 7] ^= 1 << bit; // low byte of the stamp's seq
        let decoded = decode_response(&flipped, &f.acc).expect("seq is not length-bearing");
        // Without a freshness policy the flip is invisible…
        client
            .verify(f.signer.verifier().as_ref(), &q, &decoded)
            .expect("stamp is ignored without a policy");
        // …but a freshness-enforcing client catches the forged seq.
        let err = ClientVerifier::new(&f.acc, f.table.schema())
            .with_freshness(FreshnessPolicy::default(), 3, 7)
            .verify(f.signer.verifier().as_ref(), &q, &decoded)
            .unwrap_err();
        assert_eq!(err, VerifyError::BadSignature { part: "freshness" });
    }

    // The advisory applied_seq sits before the stamp; flipping it does
    // not break the signed attestation (documented: the stamp, not the
    // edge's claim, is the trusted bound).
    let applied_at = bytes.len() - stamp.sig.len() - 2 - 4 - 8 - 8 - 1 - 8;
    let mut flipped = bytes.clone();
    flipped[applied_at + 7] ^= 0x01;
    let decoded = decode_response(&flipped, &f.acc).unwrap();
    assert_ne!(decoded.freshness.applied_seq, resp.freshness.applied_seq);
    ClientVerifier::new(&f.acc, f.table.schema())
        .with_freshness(FreshnessPolicy::default(), 3, 7)
        .verify(f.signer.verifier().as_ref(), &q, &decoded)
        .expect("advisory applied_seq is not part of the signed stamp");
}

#[test]
fn stamp_roundtrips_and_unstamped_responses_stay_compact() {
    let f = fixture(12);
    let q = RangeQuery::select_all(0, 5);
    let (resp, bytes) = stamped_bytes(&f, &q);
    let decoded = decode_response(&bytes, &f.acc).unwrap();
    assert_eq!(decoded.freshness, resp.freshness);
    assert_eq!(bytes.len(), vbx_core::measure_response(&resp).total());

    let bare = execute(&f.tree, &q, None);
    let bare_bytes = encode_response(&bare);
    assert_eq!(bare_bytes.len(), vbx_core::measure_response(&bare).total());
    assert_eq!(
        bytes.len() - bare_bytes.len(),
        8 + 8 + 4 + 2 + resp.freshness.stamp.as_ref().unwrap().sig.len(),
        "stamp cost on the wire is exactly seq+clock+key_version+sig"
    );
    let decoded_bare = decode_response(&bare_bytes, &f.acc).unwrap();
    assert_eq!(decoded_bare.freshness, ResponseFreshness::default());
}

// ---------------------------------------------------------------------
// VBX3 delta-batch envelope
// ---------------------------------------------------------------------

/// An honest group-committed batch (mixed ops, packed VB-tree payload,
/// owner stamp) plus its encoding and the pre-batch replica to replay
/// it against.
fn batch_fixture() -> (
    Fixture,
    VbTree<4>,
    DeltaBatch<Vec<vbx_crypto::accum::SignedDigest<4>>>,
    Vec<u8>,
) {
    let f = fixture(32);
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    let replica = f.tree.clone();
    let mut master = f.tree.clone();
    let schema = f.table.schema().clone();
    let tuple = |key: u64| {
        vbx_storage::Tuple::new(
            &schema,
            key,
            vec![
                vbx_storage::Value::from("a"),
                vbx_storage::Value::from("b"),
                vbx_storage::Value::from(9i64),
            ],
        )
        .unwrap()
    };
    let ops = vec![
        UpdateOp::Insert(tuple(500)),
        UpdateOp::Delete(3),
        UpdateOp::DeleteRange(10, 14),
        UpdateOp::Insert(tuple(501)),
    ];
    let payloads = scheme.update_batch(&mut master, &ops, &f.signer).unwrap();
    let batch = DeltaBatch {
        start_seq: 5,
        table: "t".to_string(),
        ops,
        payloads,
        key_version: f.signer.key_version(),
        stamp: Some(FreshnessStamp::sign(&f.signer, 9, 4)),
    };
    let bytes = encode_delta_batch(&batch);
    (f, replica, batch, bytes)
}

#[test]
fn batch_roundtrips_and_replays() {
    let (f, replica, batch, bytes) = batch_fixture();
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    let decoded = decode_delta_batch(&bytes, &f.acc).unwrap();
    assert_eq!(decoded.start_seq, batch.start_seq);
    assert_eq!(decoded.end_seq(), batch.start_seq + 4);
    assert_eq!(decoded.table, batch.table);
    assert_eq!(decoded.len(), batch.len());
    assert_eq!(decoded.key_version, batch.key_version);
    assert_eq!(decoded.stamp, batch.stamp);

    // The decoded batch replays to the master's exact state.
    let mut master = replica.clone();
    scheme
        .update_batch(&mut master, &batch.ops, &f.signer)
        .unwrap();
    let mut applied = replica.clone();
    scheme
        .apply_delta_batch(
            &mut applied,
            &decoded.ops,
            &decoded.payloads,
            decoded.key_version,
        )
        .unwrap();
    assert_eq!(applied.root_digest().exp, master.root_digest().exp);
}

#[test]
fn batch_truncations_error_never_panic() {
    let (f, _, _, bytes) = batch_fixture();
    for cut in 0..bytes.len() {
        assert!(
            decode_delta_batch(&bytes[..cut], &f.acc).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    assert!(decode_delta_batch(&bytes, &f.acc).is_ok());
}

#[test]
fn batch_op_count_lies_error_or_diverge() {
    let (f, replica, batch, bytes) = batch_fixture();
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    // Header: magic(4) + start_seq(8) + table_len(4) + table + kv(4).
    let n_ops_at = 4 + 8 + 4 + batch.table.len() + 4;
    for lie in [0u32, 1, 3, 5, 1 << 20, u32::MAX] {
        let mut forged = bytes.clone();
        forged[n_ops_at..n_ops_at + 4].copy_from_slice(&lie.to_be_bytes());
        // Either the decoder rejects the inconsistent framing, or the
        // replica's replay rejects the op/payload mismatch — a lying
        // counter must never panic or silently apply.
        if let Ok(decoded) = decode_delta_batch(&forged, &f.acc) {
            let mut target = replica.clone();
            assert!(
                scheme
                    .apply_delta_batch(
                        &mut target,
                        &decoded.ops,
                        &decoded.payloads,
                        decoded.key_version,
                    )
                    .is_err(),
                "op-count lie of {lie} must not replay cleanly"
            );
            // The failed replay must leave the replica untouched.
            assert_eq!(target.root_digest().exp, replica.root_digest().exp);
        }
    }
}

#[test]
fn batch_stamp_seq_flips_break_the_stamp_signature() {
    let (f, _, batch, bytes) = batch_fixture();
    let stamp = batch.stamp.as_ref().unwrap();
    // Trailing stamp layout: tag | seq u64 | clock u64 | kv u32 |
    // sig_len u16 | sig.
    let seq_at = bytes.len() - stamp.sig.len() - 2 - 4 - 8 - 8;
    for bit in 0..8u32 {
        let mut flipped = bytes.clone();
        flipped[seq_at + 7] ^= 1 << bit;
        let decoded = decode_delta_batch(&flipped, &f.acc).expect("seq is not length-bearing");
        let end_seq = decoded.end_seq();
        let forged = decoded.stamp.expect("stamp survives decode");
        assert!(
            !forged.verify(f.signer.verifier().as_ref()),
            "forged stamp seq must not verify"
        );
        // Through the shared freshness check, the flip reads as a bad
        // signature — not as acceptable staleness.
        let freshness = ResponseFreshness {
            applied_seq: end_seq,
            stamp: Some(forged),
        };
        let mut meter = CostMeter::new();
        assert_eq!(
            check_freshness(
                Some(&freshness),
                &FreshnessPolicy::default(),
                9,
                4,
                f.signer.verifier().as_ref(),
                &mut meter,
            ),
            Err(VerifyError::BadSignature { part: "freshness" })
        );
    }
}

#[test]
fn batch_bit_flips_never_panic() {
    let (f, replica, _, bytes) = batch_fixture();
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = bytes.clone();
            flipped[i] ^= bit;
            // Either the decoder rejects the buffer, or the decoded
            // batch goes through a full replica replay — neither path
            // may panic, and a failed replay must restore the replica.
            if let Ok(decoded) = decode_delta_batch(&flipped, &f.acc) {
                let mut target = replica.clone();
                let before = target.root_digest().exp;
                if scheme
                    .apply_delta_batch(
                        &mut target,
                        &decoded.ops,
                        &decoded.payloads,
                        decoded.key_version,
                    )
                    .is_err()
                {
                    assert_eq!(target.root_digest().exp, before);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// VBX4 compact op-stream envelope
// ---------------------------------------------------------------------

/// An honest aggregated compact response (stamped, as a cluster edge
/// would ship it) plus its encoding.
fn compact_fixture(f: &Fixture, q: &RangeQuery) -> (CompactResponse<4>, Vec<u8>) {
    let mut resp = execute_compact(&f.tree, q, None, Some(f.signer.verifier().as_ref()));
    resp.freshness = ResponseFreshness {
        applied_seq: 3,
        stamp: Some(FreshnessStamp::sign(&f.signer, 3, 7)),
    };
    let bytes = encode_compact_response(&resp);
    (resp, bytes)
}

#[test]
fn compact_truncations_error_never_panic() {
    let f = fixture(24);
    let (_, bytes) = compact_fixture(&f, &RangeQuery::select_all(0, 15));
    for cut in 0..bytes.len() {
        assert!(
            decode_compact_response(&bytes[..cut], &f.acc).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    assert!(decode_compact_response(&bytes, &f.acc).is_ok());
}

#[test]
fn compact_count_lies_error_without_blowup() {
    let f = fixture(24);
    // Not subtree-aligned, so D_S is non-empty and the response
    // carries an aggregate signature.
    let q = RangeQuery::select_all(0, 14);
    let (resp, bytes) = compact_fixture(&f, &q);
    let agg_len = resp.agg_sig.as_ref().unwrap().len();
    // Header: magic(4) + key_version(4), then dict_count(4) (the dict
    // is empty for a single query), agg flag(1) + sig_len(2) + sig,
    // part_count(4), the part's top digest (1 + 32 + 2 + 0 — the
    // signature was condensed away), row_count(4), op_count(4).
    let dict_count_at = 8;
    let part_count_at = 12 + 1 + 2 + agg_len;
    let row_count_at = part_count_at + 4 + 35;
    let op_count_at = row_count_at + 4;
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    for (at, name) in [
        (dict_count_at, "dict count"),
        (part_count_at, "part count"),
        (row_count_at, "row count"),
        (op_count_at, "op count"),
    ] {
        let truth = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
        for lie in [0u32, 1, 7, 1 << 20, u32::MAX] {
            if lie == truth {
                continue;
            }
            let mut forged = bytes.clone();
            forged[at..at + 4].copy_from_slice(&lie.to_be_bytes());
            // A lying counter must decode-error or verify-error —
            // never panic, never over-allocate, never accept.
            if let Ok(decoded) = decode_compact_response(&forged, &f.acc) {
                assert!(
                    client
                        .verify_compact(
                            f.signer.verifier().as_ref(),
                            std::slice::from_ref(&q),
                            &decoded
                        )
                        .is_err(),
                    "{name} lie of {lie} must not verify"
                );
            }
        }
    }
}

#[test]
fn compact_stack_abuse_errors_as_malformed() {
    let f = fixture(40);
    let q = RangeQuery::select_all(5, 25);
    // A part whose top digest is honestly signed but whose op stream is
    // hostile: the stack machine must reject the *structure* before any
    // digest equation is even considered.
    let honest = execute_compact(&f.tree, &q, None, None);
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    let abuse: [(&str, Vec<VoOp<4>>); 4] = [
        ("underflow", vec![VoOp::End]),
        (
            "overflow",
            std::iter::repeat_n(VoOp::Begin, MAX_VO_STACK + 6).collect(),
        ),
        ("unbalanced", vec![VoOp::Begin]),
        ("dict ref out of range", vec![VoOp::Ref(999)]),
    ];
    for (name, ops) in abuse {
        let forged = CompactResponse {
            parts: vec![CompactPart {
                rows: Vec::new(),
                top: honest.parts[0].top.clone(),
                ops,
            }],
            dict: Vec::new(),
            agg_sig: None,
            key_version: honest.key_version,
            freshness: ResponseFreshness::default(),
        };
        let materialized = client.verify_compact(
            f.signer.verifier().as_ref(),
            std::slice::from_ref(&q),
            &forged,
        );
        assert!(
            matches!(materialized, Err(VerifyError::MalformedVo { .. })),
            "{name}: materialized verifier must reject, got {materialized:?}"
        );
        let streamed = client.verify_compact_stream(
            f.signer.verifier().as_ref(),
            std::slice::from_ref(&q),
            &encode_compact_response(&forged),
            &mut |_, _| {},
        );
        assert!(
            matches!(streamed, Err(VerifyError::MalformedVo { .. })),
            "{name}: streaming verifier must reject, got {streamed:?}"
        );
    }
}

#[test]
fn compact_aggregate_sig_flips_are_bad_signatures() {
    let f = fixture(30);
    let q = RangeQuery::select_all(2, 21);
    let (resp, bytes) = compact_fixture(&f, &q);
    let agg_len = resp.agg_sig.as_ref().unwrap().len();
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    // The aggregate signature sits right after magic + key_version +
    // empty dict + flag + sig_len.
    let agg_at = 4 + 4 + 4 + 1 + 2;
    for off in [0, agg_len / 2, agg_len - 1] {
        let mut flipped = bytes.clone();
        flipped[agg_at + off] ^= 0x40;
        let decoded = decode_compact_response(&flipped, &f.acc).unwrap();
        assert_eq!(
            client
                .verify_compact(
                    f.signer.verifier().as_ref(),
                    std::slice::from_ref(&q),
                    &decoded
                )
                .unwrap_err(),
            VerifyError::BadSignature { part: "aggregate" }
        );
    }
}

// ---------------------------------------------------------------------
// WAL record codec + framing (durability subsystem)
// ---------------------------------------------------------------------

type WalPayloads = Vec<Vec<u8>>;

/// One honestly encoded WAL record of each kind (single-op commit,
/// group-committed batch, heartbeat), as the durable central logs them.
fn wal_records() -> (Fixture, WalPayloads) {
    let f = fixture(24);
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    let schema = f.table.schema().clone();
    let mut tree = f.tree.clone();
    let tuple = |key: u64| {
        vbx_storage::Tuple::new(
            &schema,
            key,
            vec![
                vbx_storage::Value::from("a"),
                vbx_storage::Value::from("b"),
                vbx_storage::Value::from(9i64),
            ],
        )
        .unwrap()
    };

    let op = UpdateOp::Insert(tuple(700));
    let payload = scheme.update(&mut tree, &op, &f.signer).unwrap();
    let delta = SignedDelta {
        seq: 4,
        table: "t".to_string(),
        op,
        payload,
        key_version: f.signer.key_version(),
    };
    let stamp = FreshnessStamp::sign(&f.signer, 5, 11);
    let commit_op = encode_wal_commit_op(&scheme, 11, Some(&stamp), &delta);

    let ops = vec![UpdateOp::Insert(tuple(701)), UpdateOp::Delete(3)];
    let payloads = scheme.update_batch(&mut tree, &ops, &f.signer).unwrap();
    let batch = DeltaBatch {
        start_seq: 5,
        table: "t".to_string(),
        ops,
        payloads,
        key_version: f.signer.key_version(),
        stamp: Some(FreshnessStamp::sign(&f.signer, 7, 12)),
    };
    let commit_batch = encode_wal_commit_batch(&scheme, 12, &batch);

    let heartbeat = encode_wal_heartbeat(13, &FreshnessStamp::sign(&f.signer, 7, 13));

    (f, vec![commit_op, commit_batch, heartbeat])
}

#[test]
fn wal_record_truncations_error_never_panic() {
    let (f, records) = wal_records();
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    for (kind, bytes) in records.iter().enumerate() {
        for cut in 0..bytes.len() {
            assert!(
                decode_wal_record(&scheme, &bytes[..cut]).is_err(),
                "record kind {kind}: prefix of {cut} bytes must not decode"
            );
        }
        assert!(decode_wal_record(&scheme, bytes).is_ok());
    }
}

#[test]
fn wal_record_bit_flips_never_panic() {
    let (f, records) = wal_records();
    let scheme = VbScheme::new(f.acc.clone(), f.tree.config().clone());
    for bytes in &records {
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut flipped = bytes.clone();
                flipped[i] ^= bit;
                // A flip in a non-semantic byte (e.g. the clock) may
                // still decode; a flip anywhere else must error. Either
                // way: no panic, no unbounded allocation. (On disk the
                // frame CRC catches all of these first — this is the
                // codec's own last line of defense.)
                let _ = decode_wal_record(&scheme, &flipped);
            }
        }
    }
}

#[test]
fn wal_framing_survives_truncation_length_lies_and_checksum_flips() {
    use vbx_storage::wal::{scan_bytes, MAX_RECORD_LEN};
    use vbx_storage::WalTail;

    let payloads: [&[u8]; 3] = [b"first record", b"", b"third, longest record of all"];
    let frame = |p: &[u8]| {
        let mut out = (p.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&vbx_storage::crc32(p).to_be_bytes());
        out.extend_from_slice(p);
        out
    };
    let mut file = b"VWAL1\x00\x00\x00".to_vec();
    let mut boundaries = vec![file.len()];
    for p in payloads {
        file.extend_from_slice(&frame(p));
        boundaries.push(file.len());
    }

    let clean = scan_bytes(&file).unwrap();
    assert_eq!(clean.records, payloads.map(<[u8]>::to_vec));
    assert_eq!(clean.tail, WalTail::Clean);

    // Every truncation keeps exactly the records whose frames survived
    // whole — the longest valid prefix, never a panic, never a partial
    // record surfacing as data.
    for cut in 0..file.len() {
        let scan = scan_bytes(&file[..cut]).unwrap();
        let whole = boundaries
            .iter()
            .filter(|b| **b <= cut)
            .count()
            .saturating_sub(1); // cuts inside the magic keep no records
        assert_eq!(scan.records.len(), whole, "cut at {cut}");
        assert_eq!(
            scan.records,
            payloads[..whole]
                .iter()
                .map(|p| p.to_vec())
                .collect::<Vec<_>>()
        );
        // A cut on a frame boundary (or the empty never-created file)
        // ends Clean; anywhere else leaves a discarded torn tail.
        if cut != 0 && !boundaries.contains(&cut) {
            assert!(matches!(scan.tail, WalTail::Torn { .. }), "cut at {cut}");
        }
    }

    // A length lie on the second record: absurd lengths and
    // past-the-end lengths both stop the scan there, keeping record 1.
    let lie_at = boundaries[1];
    for lie in [MAX_RECORD_LEN + 1, u32::MAX, file.len() as u32] {
        let mut forged = file.clone();
        forged[lie_at..lie_at + 4].copy_from_slice(&lie.to_be_bytes());
        let scan = scan_bytes(&forged).unwrap();
        assert_eq!(scan.records, vec![payloads[0].to_vec()], "lie {lie}");
        assert!(matches!(scan.tail, WalTail::Torn { offset, .. } if offset == lie_at));
    }

    // A bit-flip anywhere in a frame (header or payload) invalidates
    // that record and everything after it — flipped bytes never
    // surface as record data.
    for i in boundaries[0]..file.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = file.clone();
            flipped[i] ^= bit;
            let scan = scan_bytes(&flipped).unwrap();
            for rec in &scan.records {
                assert!(
                    payloads.contains(&rec.as_slice()),
                    "flip at {i} surfaced corrupt record data"
                );
            }
        }
    }

    // A flipped magic rejects the whole file as corrupt rather than
    // misparsing it.
    let mut bad_magic = file.clone();
    bad_magic[0] ^= 0x01;
    assert!(scan_bytes(&bad_magic).is_err());
}

#[test]
fn compact_bit_flips_never_panic_decode_or_verify() {
    let f = fixture(20);
    let q = RangeQuery::select_all(2, 13);
    let (_, bytes) = compact_fixture(&f, &q);
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = bytes.clone();
            flipped[i] ^= bit;
            // Decode rejection, verification rejection, or (for bytes
            // outside the authenticated content, e.g. the advisory
            // applied_seq) acceptance — but never a panic, on either
            // the materialized or the streaming path.
            if let Ok(resp) = decode_compact_response(&flipped, &f.acc) {
                let _ = client.verify_compact(
                    f.signer.verifier().as_ref(),
                    std::slice::from_ref(&q),
                    &resp,
                );
            }
            let _ = client.verify_compact_stream(
                f.signer.verifier().as_ref(),
                std::slice::from_ref(&q),
                &flipped,
                &mut |_, _| {},
            );
        }
    }
}

// ---------------------------------------------------------------------
// VBX5 frame layer (the transport's message framing)
// ---------------------------------------------------------------------

use vbx_core::frame::FRAME_HEADER_LEN;
use vbx_core::{ErrorCode, Frame, FrameBuffer, FrameKind, NetMsg, MAX_FRAME_LEN};

/// One honest frame of every message kind the protocol speaks, with
/// payloads that exercise every field codec (strings, queries, options,
/// verbatim envelopes).
fn frame_zoo() -> Vec<(NetMsg, Vec<u8>)> {
    let f = fixture(12);
    let stamp = FreshnessStamp::sign(&f.signer, 3, 7);
    let msgs = vec![
        NetMsg::Ping,
        NetMsg::Pong { applied_seq: 42 },
        NetMsg::RangeReq {
            table: "t".to_string(),
            query: RangeQuery::select_all(0, 5),
        },
        NetMsg::SqlReq {
            sql: "SELECT * FROM t WHERE k BETWEEN 0 AND 5".to_string(),
        },
        NetMsg::CompactReq {
            table: "t".to_string(),
            queries: vec![RangeQuery::select_all(0, 5), RangeQuery::select_all(9, 11)],
            aggregate: true,
        },
        NetMsg::BundleReq,
        NetMsg::Subscribe { cursor: 17 },
        NetMsg::PollDeltas { max: 64 },
        NetMsg::HeartbeatReq,
        NetMsg::QueryResp(stamped_bytes(&f, &RangeQuery::select_all(0, 5)).1),
        NetMsg::CompactResp(compact_fixture(&f, &RangeQuery::select_all(0, 5)).1),
        NetMsg::BundleResp(vec![0xAB; 97]),
        NetMsg::DeltaOp(vec![1, 2, 3]),
        NetMsg::DeltaBatch(batch_fixture().3),
        NetMsg::DeltaTxn(vec![4, 5, 6, 7]),
        NetMsg::SkipRange {
            start_seq: 9,
            count: 4,
        },
        NetMsg::Stamp { stamp: Some(stamp) },
        NetMsg::Stamp { stamp: None },
        NetMsg::SubAck {
            head: 30,
            oldest: 12,
        },
        NetMsg::Ack { applied_seq: 30 },
        NetMsg::ChunkRequest {
            table: "t".to_string(),
            index: 3,
        },
        NetMsg::Chunk(vec![0xC4; 61]),
        NetMsg::RestoreDone {
            chunks: 5,
            head: 88,
        },
        NetMsg::Error {
            code: ErrorCode::Lagging,
            message: "subscription overflowed".to_string(),
        },
    ];
    msgs.into_iter()
        .map(|m| {
            let bytes = m.to_frame().encode();
            (m, bytes)
        })
        .collect()
}

#[test]
fn frame_truncations_error_never_panic() {
    for (msg, bytes) in frame_zoo() {
        // Strict one-shot decode: every proper prefix must error.
        for cut in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "{:?}: prefix of {cut} bytes must not decode",
                msg.kind()
            );
        }
        let frame = Frame::decode(&bytes).unwrap();
        assert_eq!(NetMsg::from_frame(&frame).unwrap(), msg);

        // The incremental buffer treats the same prefixes as
        // need-more-bytes, never as a frame and never as corruption.
        for cut in 0..bytes.len() {
            let mut buf = FrameBuffer::new();
            buf.extend(&bytes[..cut]);
            assert!(
                matches!(buf.try_frame(), Ok(None)),
                "{:?}: prefix of {cut} bytes must stay pending",
                msg.kind()
            );
        }
    }
}

#[test]
fn frame_length_lies_error_without_blowup() {
    let bytes = NetMsg::Subscribe { cursor: 5 }.to_frame().encode();
    for lie in [
        0u32,
        (MAX_FRAME_LEN as u32) + 1,
        u32::MAX,
        (bytes.len() as u32) * 2,
    ] {
        let mut forged = bytes.clone();
        forged[0..4].copy_from_slice(&lie.to_be_bytes());
        assert!(Frame::decode(&forged).is_err(), "length lie {lie}");
        let mut buf = FrameBuffer::new();
        buf.extend(&forged);
        // An absurd length is corruption; a plausible-but-wrong one is
        // indistinguishable from a short read until the checksum runs.
        // Either way, no frame and no panic.
        if let Ok(Some(_)) = buf.try_frame() {
            panic!("length lie {lie} must not produce a frame")
        }
    }
}

#[test]
fn frame_checksum_and_kind_corruption_is_rejected() {
    for (msg, bytes) in frame_zoo() {
        // Flip one bit of the stored CRC: both decoders must reject.
        let mut bad_crc = bytes.clone();
        bad_crc[5] ^= 0x10;
        assert!(Frame::decode(&bad_crc).is_err(), "{:?}", msg.kind());
        let mut buf = FrameBuffer::new();
        buf.extend(&bad_crc);
        assert!(buf.try_frame().is_err(), "{:?}", msg.kind());

        // Flip one payload bit: the CRC catches it before any payload
        // parsing happens.
        if bytes.len() > FRAME_HEADER_LEN + 1 {
            let mut bad_payload = bytes.clone();
            let last = bad_payload.len() - 1;
            bad_payload[last] ^= 0x01;
            assert!(Frame::decode(&bad_payload).is_err(), "{:?}", msg.kind());
        }
    }

    // An unknown kind tag with a *correct* checksum still errors.
    for tag in [0x00u8, 0x2C, 0x7F, 0xFF] {
        assert!(
            FrameKind::from_tag(tag).is_none(),
            "tag {tag:#x} is unassigned"
        );
        let mut raw = Vec::new();
        let payload: &[u8] = b"";
        raw.extend_from_slice(&(1u32 + payload.len() as u32).to_be_bytes());
        let mut body = vec![tag];
        body.extend_from_slice(payload);
        raw.extend_from_slice(&vbx_storage::crc32(&body).to_be_bytes());
        raw.extend_from_slice(&body);
        assert!(Frame::decode(&raw).is_err(), "unknown kind {tag:#x}");
        let mut buf = FrameBuffer::new();
        buf.extend(&raw);
        assert!(buf.try_frame().is_err(), "unknown kind {tag:#x}");
    }
}

#[test]
fn frame_buffer_reassembles_arbitrary_chunkings() {
    let zoo = frame_zoo();
    let stream: Vec<u8> = zoo.iter().flat_map(|(_, b)| b.clone()).collect();

    // Byte-at-a-time, tiny chunks, and one giant write must all yield
    // the identical frame sequence.
    for chunk in [1usize, 3, 7, stream.len()] {
        let mut buf = FrameBuffer::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            buf.extend(piece);
            while let Some(frame) = buf.try_frame().unwrap() {
                out.push(NetMsg::from_frame(&frame).unwrap());
            }
        }
        assert_eq!(buf.pending(), 0, "chunk size {chunk}");
        assert_eq!(
            out,
            zoo.iter().map(|(m, _)| m.clone()).collect::<Vec<_>>(),
            "chunk size {chunk}"
        );
    }
}

#[test]
fn frame_stream_bit_flips_never_panic() {
    let zoo = frame_zoo();
    // A short stream of three frames; flip every bit position once.
    let stream: Vec<u8> = zoo[..3].iter().flat_map(|(_, b)| b.clone()).collect();
    for i in 0..stream.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = stream.clone();
            flipped[i] ^= bit;
            let mut buf = FrameBuffer::new();
            buf.extend(&flipped);
            // Drain until the corruption surfaces (Err) or the buffer
            // runs dry — whichever comes first, without panicking. A
            // frame that does come out intact must be one of the
            // originals (the flip landed in a later frame).
            loop {
                match buf.try_frame() {
                    Ok(Some(frame)) => {
                        let msg = NetMsg::from_frame(&frame);
                        if let Ok(msg) = msg {
                            assert!(
                                zoo.iter().any(|(m, _)| *m == msg),
                                "flip at {i} surfaced a forged message"
                            );
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
    }
}

#[test]
fn net_msg_rejects_trailing_bytes() {
    let frame = NetMsg::Subscribe { cursor: 9 }.to_frame();
    let mut padded = frame.clone();
    padded.payload.push(0);
    assert!(NetMsg::from_frame(&padded).is_err());

    // Envelope-carrying kinds are verbatim passthroughs: bytes are the
    // payload, so "trailing" bytes are simply part of the envelope and
    // the *envelope* decoder rejects them later.
    let resp = NetMsg::QueryResp(vec![9, 9, 9]);
    assert_eq!(NetMsg::from_frame(&resp.to_frame()).unwrap(), resp);
}
