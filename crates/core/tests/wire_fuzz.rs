//! Hostile-input hardening for `wire::decode_response`: truncated
//! buffers, oversized length prefixes, and bit-flips anywhere in the
//! buffer must produce errors (or verification failures for semantic
//! fields), never panics or unbounded allocations.

use vbx_core::{
    decode_response, encode_response, execute, ClientVerifier, FreshnessPolicy, FreshnessStamp,
    RangeQuery, ResponseFreshness, VbTree, VbTreeConfig, VerifyError,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Table;

struct Fixture {
    tree: VbTree<4>,
    signer: MockSigner,
    table: Table,
    acc: Acc256,
}

fn fixture(rows: u64) -> Fixture {
    let table = WorkloadSpec::new(rows, 3, 8).build();
    let signer = MockSigner::new(11);
    let acc = Acc256::test_default();
    let tree = VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);
    Fixture {
        tree,
        signer,
        table,
        acc,
    }
}

/// A stamped response + its encoding, as an honest cluster edge would
/// ship it.
fn stamped_bytes(f: &Fixture, q: &RangeQuery) -> (vbx_core::QueryResponse<4>, Vec<u8>) {
    let mut resp = execute(&f.tree, q, None);
    resp.freshness = ResponseFreshness {
        applied_seq: 3,
        stamp: Some(FreshnessStamp::sign(&f.signer, 3, 7)),
    };
    let bytes = encode_response(&resp);
    (resp, bytes)
}

#[test]
fn every_truncation_errors_never_panics() {
    let f = fixture(24);
    let (_, bytes) = stamped_bytes(&f, &RangeQuery::select_all(0, 15));
    for cut in 0..bytes.len() {
        assert!(
            decode_response(&bytes[..cut], &f.acc).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
    assert!(decode_response(&bytes, &f.acc).is_ok());
}

#[test]
fn oversized_length_prefixes_error_without_blowup() {
    let f = fixture(16);
    let (_, bytes) = stamped_bytes(&f, &RangeQuery::select_all(0, 7));

    // Row count (offset 4): claim 2^32-1 rows in a tiny buffer.
    let mut huge_rows = bytes.clone();
    huge_rows[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(decode_response(&huge_rows, &f.acc).is_err());

    // First row's arity (offset 8 + 8): claim 65535 values.
    let mut huge_arity = bytes.clone();
    huge_arity[16..18].copy_from_slice(&u16::MAX.to_be_bytes());
    assert!(decode_response(&huge_arity, &f.acc).is_err());

    // Stamp signature length (last u16 before the signature bytes):
    // claim a signature longer than the buffer.
    let sig_len_at = bytes.len() - 32 - 2;
    let mut huge_sig = bytes.clone();
    huge_sig[sig_len_at..sig_len_at + 2].copy_from_slice(&u16::MAX.to_be_bytes());
    assert!(decode_response(&huge_sig, &f.acc).is_err());

    // Every count field zeroed/maxed at once still terminates quickly.
    let mut chaos = bytes;
    for w in chaos.chunks_exact_mut(5) {
        w[0] ^= 0xFF;
    }
    let _ = decode_response(&chaos, &f.acc); // outcome irrelevant; no panic/OOM
}

#[test]
fn single_bit_flips_never_panic_decode_or_verify() {
    let f = fixture(20);
    let q = RangeQuery::select_all(2, 13);
    let (_, bytes) = stamped_bytes(&f, &q);
    let client = ClientVerifier::new(&f.acc, f.table.schema());
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut flipped = bytes.clone();
            flipped[i] ^= bit;
            // Either the decoder rejects the buffer, or the decoded
            // response goes through full verification — neither path
            // may panic.
            if let Ok(resp) = decode_response(&flipped, &f.acc) {
                let _ = client.verify(f.signer.verifier().as_ref(), &q, &resp);
            }
        }
    }
}

#[test]
fn stamp_seq_bitflips_are_rejected_by_freshness_verification() {
    let f = fixture(20);
    let q = RangeQuery::select_all(2, 13);
    let (resp, bytes) = stamped_bytes(&f, &q);
    let stamp = resp.freshness.stamp.as_ref().unwrap();
    // Freshness section layout (from the end): sig | sig_len u16 |
    // key_version u32 | clock u64 | seq u64.
    let seq_at = bytes.len() - stamp.sig.len() - 2 - 4 - 8 - 8;
    let client = ClientVerifier::new(&f.acc, f.table.schema());

    for bit in 0..8u32 {
        let mut flipped = bytes.clone();
        flipped[seq_at + 7] ^= 1 << bit; // low byte of the stamp's seq
        let decoded = decode_response(&flipped, &f.acc).expect("seq is not length-bearing");
        // Without a freshness policy the flip is invisible…
        client
            .verify(f.signer.verifier().as_ref(), &q, &decoded)
            .expect("stamp is ignored without a policy");
        // …but a freshness-enforcing client catches the forged seq.
        let err = ClientVerifier::new(&f.acc, f.table.schema())
            .with_freshness(FreshnessPolicy::default(), 3, 7)
            .verify(f.signer.verifier().as_ref(), &q, &decoded)
            .unwrap_err();
        assert_eq!(err, VerifyError::BadSignature { part: "freshness" });
    }

    // The advisory applied_seq sits before the stamp; flipping it does
    // not break the signed attestation (documented: the stamp, not the
    // edge's claim, is the trusted bound).
    let applied_at = bytes.len() - stamp.sig.len() - 2 - 4 - 8 - 8 - 1 - 8;
    let mut flipped = bytes.clone();
    flipped[applied_at + 7] ^= 0x01;
    let decoded = decode_response(&flipped, &f.acc).unwrap();
    assert_ne!(decoded.freshness.applied_seq, resp.freshness.applied_seq);
    ClientVerifier::new(&f.acc, f.table.schema())
        .with_freshness(FreshnessPolicy::default(), 3, 7)
        .verify(f.signer.verifier().as_ref(), &q, &decoded)
        .expect("advisory applied_seq is not part of the signed stamp");
}

#[test]
fn stamp_roundtrips_and_unstamped_responses_stay_compact() {
    let f = fixture(12);
    let q = RangeQuery::select_all(0, 5);
    let (resp, bytes) = stamped_bytes(&f, &q);
    let decoded = decode_response(&bytes, &f.acc).unwrap();
    assert_eq!(decoded.freshness, resp.freshness);
    assert_eq!(bytes.len(), vbx_core::measure_response(&resp).total());

    let bare = execute(&f.tree, &q, None);
    let bare_bytes = encode_response(&bare);
    assert_eq!(bare_bytes.len(), vbx_core::measure_response(&bare).total());
    assert_eq!(
        bytes.len() - bare_bytes.len(),
        8 + 8 + 4 + 2 + resp.freshness.stamp.as_ref().unwrap().sig.len(),
        "stamp cost on the wire is exactly seq+clock+key_version+sig"
    );
    let decoded_bare = decode_response(&bare_bytes, &f.acc).unwrap();
    assert_eq!(decoded_bare.freshness, ResponseFreshness::default());
}
