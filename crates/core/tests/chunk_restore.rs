//! Verified chunked state sync: the chunk producer ([`TreeChunks`])
//! against the verifying [`Restorer`].
//!
//! The contract under test: a restoring edge authenticates **every
//! chunk against the signed digests as it ingests** — a faithful
//! stream rebuilds an equivalent tree, and a tampered, reordered,
//! truncated, stale, or mis-signed stream is rejected *mid-stream*,
//! before any state is installed.

use vbx_core::{
    execute, ClientVerifier, RangeQuery, Restorer, SyncError, TreeChunks, VbTree, VbTreeConfig,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;

fn tree(rows: u64, fanout: usize) -> (VbTree<4>, MockSigner) {
    let table = WorkloadSpec::new(rows, 3, 8).build();
    let signer = MockSigner::new(6);
    let t = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        Acc256::test_default(),
        &signer,
    );
    (t, signer)
}

fn chunks_of(t: &VbTree<4>, per_chunk: usize) -> Vec<Vec<u8>> {
    let producer = TreeChunks::with_leaves_per_chunk(t, per_chunk);
    (0..producer.num_chunks())
        .map(|i| producer.encode_chunk(i).unwrap())
        .collect()
}

fn restore(chunks: &[Vec<u8>], signer: &MockSigner) -> Result<VbTree<4>, SyncError> {
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    for c in chunks {
        r.ingest(c)?;
    }
    r.finish()
}

#[test]
fn faithful_stream_rebuilds_an_equivalent_tree() {
    for (rows, per_chunk) in [(0u64, 4usize), (1, 4), (150, 4), (300, 1), (97, 64)] {
        let (t, signer) = tree(rows, 5);
        let chunks = chunks_of(&t, per_chunk);
        assert!(chunks.len() >= 2, "skeleton plus at least one leaf run");
        let back = restore(&chunks, &signer).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.height(), t.height());
        assert_eq!(back.version(), t.version());
        assert_eq!(back.key_version(), t.key_version());
        assert_eq!(back.root_digest().exp, t.root_digest().exp);
        assert_eq!(back.schema(), t.schema());
        // The restored replica passes a full audit and serves
        // verifiable queries.
        back.check_integrity(Some(signer.verifier().as_ref()))
            .unwrap();
        if rows > 10 {
            let q = RangeQuery::select_all(5, rows - 3);
            let resp = execute(&back, &q, None);
            let acc = Acc256::test_default();
            ClientVerifier::new(&acc, t.schema())
                .verify(signer.verifier().as_ref(), &q, &resp)
                .unwrap();
        }
    }
}

#[test]
fn every_single_bit_flip_in_a_leaf_chunk_is_caught_mid_stream() {
    let (t, signer) = tree(60, 4);
    let chunks = chunks_of(&t, 4);
    // Flip a sample of bits across the whole second chunk (a leaf
    // run): the restorer must reject the chunk at ingest, never
    // deferring to finish().
    let victim = 1usize;
    for byte in (0..chunks[victim].len()).step_by(7) {
        let mut tampered = chunks.clone();
        tampered[victim][byte] ^= 0x40;
        let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
        r.ingest(&tampered[0]).unwrap();
        assert!(
            r.ingest(&tampered[victim]).is_err(),
            "bit flip at byte {byte} must be rejected as it ingests"
        );
    }
}

#[test]
fn skeleton_tampering_is_caught_at_chunk_zero() {
    let (t, signer) = tree(60, 4);
    let chunks = chunks_of(&t, 4);
    // The signed preorder skeleton (digests + separators) starts after
    // the fixed header fields, the schema, and the per-chunk count:
    // MAGIC|index|total|version | len|height|key_version|geometry(16)|
    // fanout tag+value(5) | schema | per_chunk.
    let mut schema_bytes = Vec::new();
    t.schema().encode_into(&mut schema_bytes);
    let preorder_start = 12 + 8 + 8 + 4 + 4 + 16 + 5 + schema_bytes.len() + 4;
    assert!(preorder_start < chunks[0].len());

    // No bit flip in the skeleton survives the stream: forged digests
    // and broken structure die at chunk 0 (signature / arity / depth /
    // exponent-product checks); a separator nudged to a value that
    // still sorts dies at the leaf run whose pinned bounds it violates.
    // Either way the restore errors before a tree is released.
    for byte in (preorder_start..chunks[0].len()).step_by(5) {
        let mut tampered = chunks.clone();
        tampered[0][byte] ^= 0x04;
        assert!(
            restore(&tampered, &signer).is_err(),
            "skeleton bit flip at byte {byte} must abort the restore"
        );
    }

    // A flipped tree-version byte in the header is metadata the
    // skeleton cannot authenticate alone — it is caught on the very
    // next leaf chunk as a source mismatch.
    let mut bad = chunks[0].clone();
    bad[12] ^= 0x01;
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&bad).unwrap();
    assert!(matches!(
        r.ingest(&chunks[1]),
        Err(SyncError::SourceChanged { .. })
    ));
}

#[test]
fn reordered_and_replayed_chunks_are_rejected() {
    let (t, signer) = tree(120, 4);
    let chunks = chunks_of(&t, 4);
    assert!(chunks.len() >= 4);

    // Leaf run before the skeleton.
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    assert!(matches!(
        r.ingest(&chunks[1]),
        Err(SyncError::ChunkOutOfOrder {
            expected: 0,
            got: 1
        })
    ));

    // Two leaf runs swapped.
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&chunks[0]).unwrap();
    assert!(matches!(
        r.ingest(&chunks[2]),
        Err(SyncError::ChunkOutOfOrder {
            expected: 1,
            got: 2
        })
    ));

    // The same chunk replayed.
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&chunks[0]).unwrap();
    r.ingest(&chunks[1]).unwrap();
    assert!(matches!(
        r.ingest(&chunks[1]),
        Err(SyncError::ChunkOutOfOrder {
            expected: 2,
            got: 1
        })
    ));
}

#[test]
fn truncated_stream_never_finishes() {
    let (t, signer) = tree(120, 4);
    let chunks = chunks_of(&t, 4);
    for keep in 1..chunks.len() {
        let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
        for c in &chunks[..keep] {
            r.ingest(c).unwrap();
        }
        assert!(!r.is_complete());
        let Err(err) = r.finish() else {
            panic!("{keep}/{} chunks must not finish", chunks.len());
        };
        assert!(
            matches!(err, SyncError::Incomplete { .. }),
            "{keep}/{} chunks must report Incomplete, got: {err}",
            chunks.len()
        );
    }

    // A chunk cut short mid-entry is malformed on arrival.
    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&chunks[0]).unwrap();
    let cut = &chunks[1][..chunks[1].len() - 3];
    assert!(r.ingest(cut).is_err());
}

#[test]
fn wrong_verifier_rejects_the_very_first_chunk() {
    let (t, _signer) = tree(60, 4);
    let chunks = chunks_of(&t, 4);
    let stranger = MockSigner::new(9_999);
    let mut r = Restorer::new(Acc256::test_default(), stranger.verifier());
    assert!(matches!(
        r.ingest(&chunks[0]),
        Err(SyncError::BadSignature(_))
    ));
}

#[test]
fn chunks_from_different_tree_versions_are_rejected_as_source_changed() {
    let (mut t, signer) = tree(120, 4);
    let old = chunks_of(&t, 4);
    // The source commits an update between two of our fetches.
    let tuple = vbx_storage::Tuple::new(
        t.schema(),
        1_000_000,
        vec![
            vbx_storage::Value::from("aaaaaaaa"),
            vbx_storage::Value::from("bbbbbbbb"),
            vbx_storage::Value::from(42i64),
        ],
    )
    .unwrap();
    t.insert(tuple, &signer).unwrap();
    let new = chunks_of(&t, 4);

    let mut r = Restorer::new(Acc256::test_default(), signer.verifier());
    r.ingest(&old[0]).unwrap();
    assert!(
        matches!(r.ingest(&new[1]), Err(SyncError::SourceChanged { .. })),
        "a chunk from a newer tree version must abort the restore"
    );
}
