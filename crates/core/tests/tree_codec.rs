//! Tree serialization: distribution bundles as bytes.

use vbx_core::{
    decode_tree, encode_tree, execute, ClientVerifier, RangeQuery, VbTree, VbTreeConfig,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;

fn tree(rows: u64, fanout: usize) -> (VbTree<4>, MockSigner) {
    let table = WorkloadSpec::new(rows, 3, 8).build();
    let signer = MockSigner::new(6);
    let t = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        Acc256::test_default(),
        &signer,
    );
    (t, signer)
}

#[test]
fn roundtrip_preserves_everything() {
    let (t, signer) = tree(150, 5);
    let bytes = encode_tree(&t);
    let back = decode_tree(&bytes, Acc256::test_default()).unwrap();
    assert_eq!(back.len(), t.len());
    assert_eq!(back.height(), t.height());
    assert_eq!(back.version(), t.version());
    assert_eq!(back.key_version(), t.key_version());
    assert_eq!(back.root_digest().exp, t.root_digest().exp);
    assert_eq!(back.schema(), t.schema());
    // Full audit including every signature.
    back.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn decoded_replica_serves_verifiable_queries() {
    let (t, signer) = tree(200, 6);
    let back = decode_tree(&encode_tree(&t), Acc256::test_default()).unwrap();
    let q = RangeQuery::project(20, 120, vec![0, 2]);
    let resp = execute(&back, &q, None);
    let schema = t.schema().clone();
    let acc = Acc256::test_default();
    ClientVerifier::new(&acc, &schema)
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn empty_and_tiny_trees_roundtrip() {
    for rows in [0u64, 1, 2] {
        let (t, _) = tree(rows, 4);
        let back = decode_tree(&encode_tree(&t), Acc256::test_default()).unwrap();
        assert_eq!(back.len(), rows);
    }
}

#[test]
fn updates_after_decode_work() {
    let (t, signer) = tree(60, 4);
    let mut back = decode_tree(&encode_tree(&t), Acc256::test_default()).unwrap();
    let schema = back.schema().clone();
    let tuple = vbx_storage::Tuple::new(
        &schema,
        1_000,
        vec![
            vbx_storage::Value::from("x"),
            vbx_storage::Value::from("y"),
            vbx_storage::Value::from(1i64),
        ],
    )
    .unwrap();
    back.insert(tuple, &signer).unwrap();
    back.delete(10, &signer).unwrap();
    back.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn corruption_rejected_not_panicking() {
    let (t, _) = tree(80, 4);
    let bytes = encode_tree(&t);
    // Every truncation either errors cleanly or (never) panics.
    for cut in (0..bytes.len()).step_by(97) {
        assert!(decode_tree(&bytes[..cut], Acc256::test_default()).is_err());
    }
    // Bit flips anywhere must be rejected by parsing or by the
    // integrity audit — decode_tree never returns a broken tree.
    for pos in (0..bytes.len()).step_by(211) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        match decode_tree(&bad, Acc256::test_default()) {
            Err(_) => {}
            Ok(tree) => {
                // The flip must have hit a non-semantic byte (e.g. a
                // signature byte — integrity check without verifier does
                // not inspect signatures). Structure must still be sound.
                tree.check_integrity(None).unwrap();
            }
        }
    }
}

#[test]
fn wrong_group_rejected() {
    // Exponents valid under the build group may exceed q of another
    // group; decode validates ranges.
    let (t, _) = tree(40, 4);
    let bytes = encode_tree(&t);
    let other = vbx_crypto::Accumulator::new(vbx_mathx::groups::test_group_128());
    // Different width entirely: parse must fail (digest width mismatch).
    assert!(vbx_core::decode_tree::<2>(&bytes, other).is_err());
}
