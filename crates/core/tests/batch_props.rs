//! Group-commit equivalence properties: for every batch size 1..=16 and
//! a seeded mix of insert/delete/modify ops, `AuthScheme::update_batch`
//! must produce **byte-identical** trees (same structure, same
//! exponents, same signatures — proven via `encode_tree`), identical
//! root digests, and a signing-sweep cost no worse than the per-op
//! path, both at the signing master and at replaying replicas.

use vbx_core::{encode_tree, AuthScheme, UpdateOp, VbScheme, VbTreeConfig};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Schema, Tuple, Value};

const ROWS: u64 = 120;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn fresh_tuple(schema: &Schema, key: u64, salt: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key}.{salt}")),
            Value::from("w"),
            Value::from((salt % 97) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

/// A valid op mix of exactly `k` ops against the model of live keys:
/// inserts of fresh keys, deletes of live keys, modifies (delete +
/// re-insert with new values), and small range deletes.
fn gen_ops(
    schema: &Schema,
    rng: &mut Lcg,
    live: &mut std::collections::BTreeSet<u64>,
    next_key: &mut u64,
    k: usize,
) -> Vec<UpdateOp> {
    let mut ops = Vec::with_capacity(k);
    while ops.len() < k {
        let pick_live = |rng: &mut Lcg, live: &std::collections::BTreeSet<u64>| {
            let idx = (rng.next() as usize) % live.len();
            *live.iter().nth(idx).expect("non-empty")
        };
        match rng.next() % 4 {
            0 => {
                *next_key += 1;
                let key = 10_000 + *next_key;
                live.insert(key);
                ops.push(UpdateOp::Insert(fresh_tuple(schema, key, rng.next())));
            }
            1 if !live.is_empty() => {
                let key = pick_live(rng, live);
                live.remove(&key);
                ops.push(UpdateOp::Delete(key));
            }
            // Modify: delete + re-insert the same key with new values
            // (two ops — only when both still fit in the batch).
            2 if !live.is_empty() && ops.len() + 2 <= k => {
                let key = pick_live(rng, live);
                ops.push(UpdateOp::Delete(key));
                ops.push(UpdateOp::Insert(fresh_tuple(schema, key, rng.next())));
            }
            3 if !live.is_empty() => {
                let lo = pick_live(rng, live);
                let hi = lo + rng.next() % 5;
                live.retain(|&key| key < lo || key > hi);
                ops.push(UpdateOp::DeleteRange(lo, hi));
            }
            _ => {
                *next_key += 1;
                let key = 10_000 + *next_key;
                live.insert(key);
                ops.push(UpdateOp::Insert(fresh_tuple(schema, key, rng.next())));
            }
        }
    }
    ops
}

#[test]
fn update_batch_is_byte_identical_to_per_op_for_all_sizes() {
    let table = WorkloadSpec::new(ROWS, 3, 8).build();
    let signer = MockSigner::new(0xBA7C);
    let scheme: VbScheme<4> = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(5));
    let base = scheme.build(&table, &signer);
    let schema = table.schema().clone();

    let mut rng = Lcg(0x5EED_2026);
    let mut next_key = 0u64;

    for k in 1..=16usize {
        // Every size replays against the same base snapshot, so the op
        // model resets to the base contents each round (fresh insert
        // keys stay monotone across rounds and never collide).
        let mut live: std::collections::BTreeSet<u64> = table.iter().map(|t| t.key).collect();
        let ops = gen_ops(&schema, &mut rng, &mut live, &mut next_key, k);

        // Per-op path: one signed delta per op, replayed one by one.
        let mut master_perop = base.clone();
        let mut replica_perop = base.clone();
        for op in &ops {
            let payload = scheme
                .update(&mut master_perop, op, &signer)
                .unwrap_or_else(|e| panic!("per-op update (k={k}): {e}"));
            scheme
                .apply_delta(&mut replica_perop, op, &payload, signer.key_version())
                .unwrap_or_else(|e| panic!("per-op replay (k={k}): {e}"));
        }

        // Group-commit path: one deferred signing sweep, one packed
        // payload, one batch replay.
        let mut master_batch = base.clone();
        let mut replica_batch = base.clone();
        let payloads = scheme
            .update_batch(&mut master_batch, &ops, &signer)
            .unwrap_or_else(|e| panic!("update_batch (k={k}): {e}"));
        scheme
            .apply_delta_batch(&mut replica_batch, &ops, &payloads, signer.key_version())
            .unwrap_or_else(|e| panic!("batch replay (k={k}): {e}"));

        // Byte-identity across all four trees (structure, separators,
        // exponents, *and* signatures).
        let canonical = encode_tree(&master_perop);
        assert_eq!(
            canonical,
            encode_tree(&master_batch),
            "k={k}: batch master differs from per-op master"
        );
        assert_eq!(
            canonical,
            encode_tree(&replica_perop),
            "k={k}: per-op replica diverged"
        );
        assert_eq!(
            canonical,
            encode_tree(&replica_batch),
            "k={k}: batch replica diverged"
        );
        assert_eq!(
            master_perop.root_digest().exp,
            master_batch.root_digest().exp,
            "k={k}: root digests differ"
        );

        // The deferred sweep signs each dirty digest once; the per-op
        // path re-signs every path digest per op. The batch can never
        // sign more.
        let perop_signs = master_perop.meter().sign_ops - base.meter().sign_ops;
        let batch_signs = master_batch.meter().sign_ops - base.meter().sign_ops;
        assert!(
            batch_signs <= perop_signs,
            "k={k}: batch signed {batch_signs} > per-op {perop_signs}"
        );

        // Replicas never sign.
        assert_eq!(
            replica_batch.meter().sign_ops,
            base.meter().sign_ops,
            "k={k}: batch replica performed signing work"
        );

        // Advance the base state so every size runs on fresh structure.
        base.check_integrity(None).expect("base intact");
    }
}

#[test]
fn batched_path_shares_signatures_on_clustered_ops() {
    // 16 deletes of consecutive keys share their root-to-leaf paths:
    // the per-op path re-signs the shared ancestors 16 times, the
    // sweep exactly once — the amortisation the group-commit pipeline
    // is built on.
    let table = WorkloadSpec::new(ROWS, 3, 8).build();
    let signer = MockSigner::new(0xA3);
    let scheme: VbScheme<4> = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(5));
    let base = scheme.build(&table, &signer);
    let ops: Vec<UpdateOp> = (40..56).map(UpdateOp::Delete).collect();

    let mut perop = base.clone();
    for op in &ops {
        scheme.update(&mut perop, op, &signer).unwrap();
    }
    let mut batch = base.clone();
    scheme.update_batch(&mut batch, &ops, &signer).unwrap();

    let perop_signs = perop.meter().sign_ops - base.meter().sign_ops;
    let batch_signs = batch.meter().sign_ops - base.meter().sign_ops;
    assert!(
        batch_signs * 3 <= perop_signs,
        "expected ≥3× signature amortisation on clustered deletes: \
         batch {batch_signs} vs per-op {perop_signs}"
    );
    assert_eq!(encode_tree(&perop), encode_tree(&batch));
}

#[test]
fn failed_batch_restores_the_pre_batch_store() {
    let table = WorkloadSpec::new(60, 3, 8).build();
    let signer = MockSigner::new(7);
    let scheme: VbScheme<4> = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(5));
    let mut store = scheme.build(&table, &signer);
    let before = encode_tree(&store);

    // Third op fails (key 999_999 does not exist): the first two must
    // not leak into the store.
    let ops = vec![
        UpdateOp::Delete(3),
        UpdateOp::Delete(5),
        UpdateOp::Delete(999_999),
    ];
    assert!(scheme.update_batch(&mut store, &ops, &signer).is_err());
    assert_eq!(
        encode_tree(&store),
        before,
        "failed batch must leave the store byte-identical"
    );
}

#[test]
fn batch_replay_rejects_forged_op_streams() {
    let table = WorkloadSpec::new(60, 3, 8).build();
    let signer = MockSigner::new(9);
    let scheme: VbScheme<4> = VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(5));
    let mut master = scheme.build(&table, &signer);
    let replica = scheme.build(&table, &signer);
    let schema = table.schema().clone();

    let ops = vec![
        UpdateOp::Insert(fresh_tuple(&schema, 900, 1)),
        UpdateOp::Delete(10),
    ];
    let payloads = scheme.update_batch(&mut master, &ops, &signer).unwrap();

    // A man-in-the-middle rewrites an op but cannot rebuild the packed
    // digest stream: the replica's recomputed exponents diverge.
    let forged_ops = vec![
        UpdateOp::Insert(fresh_tuple(&schema, 901, 2)),
        UpdateOp::Delete(10),
    ];
    let mut target = replica.clone();
    let before = encode_tree(&target);
    assert!(scheme
        .apply_delta_batch(&mut target, &forged_ops, &payloads, signer.key_version())
        .is_err());
    assert_eq!(encode_tree(&target), before, "failed replay must restore");

    // The honest stream still replays.
    let mut target = replica.clone();
    scheme
        .apply_delta_batch(&mut target, &ops, &payloads, signer.key_version())
        .unwrap();
    assert_eq!(
        target.root_digest().exp,
        master.root_digest().exp,
        "honest batch replays to the master state"
    );
}
