//! Property-based tests of the VB-tree invariants.
//!
//! These exercise the guarantees the paper's proofs rely on:
//! commutativity of the digest algebra, digest consistency under random
//! update interleavings, verifiability of arbitrary range queries, and —
//! most importantly — *no false accepts*: random corruption of a wire
//! response must never verify.

use proptest::prelude::*;
use vbx_core::{
    decode_response, encode_response, execute, ClientVerifier, RangeQuery, VbTree, VbTreeConfig,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Tuple, Value};

fn build_tree(rows: u64, fanout: usize) -> (VbTree<4>, MockSigner) {
    let table = WorkloadSpec::new(rows, 3, 6).build();
    let signer = MockSigner::new(42);
    let tree = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        Acc256::test_default(),
        &signer,
    );
    (tree, signer)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any range query over any tree shape verifies.
    #[test]
    fn any_range_query_verifies(
        rows in 1u64..120,
        fanout in 3usize..9,
        lo in 0u64..150,
        span in 0u64..150,
    ) {
        let (tree, signer) = build_tree(rows, fanout);
        let hi = lo.saturating_add(span);
        let q = RangeQuery::select_all(lo, hi);
        let resp = execute(&tree, &q, None);
        let schema = tree.schema().clone();
        let acc = tree.accumulator().clone();
        let client = ClientVerifier::new(&acc, &schema);
        let report = client.verify(signer.verifier().as_ref(), &q, &resp).unwrap();
        let expected = tree.range(lo, hi).len();
        prop_assert_eq!(report.rows, expected);
    }

    /// Random projections verify and D_P counts are exact.
    #[test]
    fn any_projection_verifies(
        rows in 1u64..80,
        keep0 in proptest::bool::ANY,
        keep1 in proptest::bool::ANY,
        keep2 in proptest::bool::ANY,
    ) {
        let (tree, signer) = build_tree(rows, 4);
        let mut cols = Vec::new();
        for (i, keep) in [keep0, keep1, keep2].into_iter().enumerate() {
            if keep { cols.push(i); }
        }
        if cols.is_empty() { cols.push(0); }
        let filtered = 3 - cols.len();
        let q = RangeQuery::project(0, rows, cols);
        let resp = execute(&tree, &q, None);
        prop_assert_eq!(resp.vo.d_p.len(), resp.rows.len() * filtered);
        let schema = tree.schema().clone();
        let acc = tree.accumulator().clone();
        ClientVerifier::new(&acc, &schema)
            .verify(signer.verifier().as_ref(), &q, &resp)
            .unwrap();
    }

    /// Insert/delete interleavings preserve every structural and digest
    /// invariant, and the root digest equals a freshly-built tree over
    /// the same final contents.
    #[test]
    fn update_interleavings_preserve_integrity(
        ops in proptest::collection::vec((0u64..60, proptest::bool::ANY), 1..40),
        fanout in 3usize..7,
    ) {
        let spec = WorkloadSpec::new(0, 3, 6);
        let signer = MockSigner::new(42);
        let mut tree: VbTree<4> = VbTree::new(
            spec.schema(),
            VbTreeConfig::with_fanout(fanout),
            Acc256::test_default(),
            &signer,
        );
        let schema = tree.schema().clone();
        let mut reference = std::collections::BTreeMap::new();
        for (key, is_insert) in ops {
            if is_insert {
                let t = Tuple::new(&schema, key, vec![
                    Value::from(format!("x{key}")),
                    Value::from(format!("y{key}")),
                    Value::from(key as i64),
                ]).unwrap();
                match tree.insert(t.clone(), &signer) {
                    Ok(()) => { reference.insert(key, t); }
                    Err(vbx_core::CoreError::DuplicateKey(_)) => {
                        prop_assert!(reference.contains_key(&key));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            } else {
                match tree.delete(key, &signer) {
                    Ok(t) => {
                        prop_assert_eq!(reference.remove(&key).map(|r| r.key), Some(t.key));
                    }
                    Err(vbx_core::CoreError::KeyNotFound(_)) => {
                        prop_assert!(!reference.contains_key(&key));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
        tree.check_integrity(Some(signer.verifier().as_ref())).unwrap();
        prop_assert_eq!(tree.len() as usize, reference.len());
        // Root exponent equals product over final contents, independent
        // of the path taken.
        let mut rebuilt = VbTree::<4>::new(
            schema.clone(),
            VbTreeConfig::with_fanout(fanout),
            Acc256::test_default(),
            &signer,
        );
        for t in reference.values() {
            rebuilt.insert(t.clone(), &signer).unwrap();
        }
        prop_assert_eq!(tree.root_digest().exp, rebuilt.root_digest().exp);
    }

    /// Corrupting any single byte of a serialized response must never
    /// produce a verifying answer with different contents (no false
    /// accepts).
    #[test]
    fn no_false_accepts_under_corruption(
        pos_seed in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let (tree, signer) = build_tree(40, 4);
        let q = RangeQuery::project(5, 25, vec![0, 2]);
        let resp = execute(&tree, &q, None);
        let mut bytes = encode_response(&resp);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        let schema = tree.schema().clone();
        let acc = tree.accumulator().clone();
        match decode_response(&bytes, &acc) {
            Err(_) => {} // rejected at the wire layer: fine
            Ok(decoded) => {
                let client = ClientVerifier::new(&acc, &schema);
                match client.verify(signer.verifier().as_ref(), &q, &decoded) {
                    Err(_) => {} // rejected by verification: fine
                    Ok(_) => {
                        // Verification passed — the corruption must have
                        // been semantically neutral (identical rows).
                        prop_assert_eq!(decoded.rows.len(), resp.rows.len());
                        for (a, b) in decoded.rows.iter().zip(&resp.rows) {
                            prop_assert_eq!(a, b);
                        }
                    }
                }
            }
        }
    }

    /// delete_range equals the same deletions applied one by one.
    #[test]
    fn batch_delete_equals_pointwise(
        rows in 10u64..80,
        lo in 0u64..80,
        span in 0u64..40,
        fanout in 3usize..7,
    ) {
        let (mut batch, signer) = build_tree(rows, fanout);
        let (mut point, _) = build_tree(rows, fanout);
        let hi = lo.saturating_add(span);
        let removed = batch.delete_range(lo, hi, &signer).unwrap();
        for t in &removed {
            point.delete(t.key, &signer).unwrap();
        }
        batch.check_integrity(Some(signer.verifier().as_ref())).unwrap();
        point.check_integrity(Some(signer.verifier().as_ref())).unwrap();
        prop_assert_eq!(batch.len(), point.len());
        prop_assert_eq!(batch.root_digest().exp, point.root_digest().exp);
    }
}
