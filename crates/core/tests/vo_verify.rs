//! End-to-end verification tests: selection, projection, predicate
//! selection, and tamper detection (the attacks of Section 3.1).

use vbx_core::{
    decode_response, encode_response, execute, measure_response, ClientVerifier, RangeQuery,
    VbTree, VbTreeConfig, VerifyError,
};
use vbx_crypto::rsa;
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Table, Tuple, Value};

struct Fixture {
    tree: VbTree<4>,
    signer: MockSigner,
    table: Table,
    acc: Acc256,
}

fn fixture(rows: u64, fanout: usize) -> Fixture {
    let table = WorkloadSpec::new(rows, 4, 10).build();
    let signer = MockSigner::new(7);
    let acc = Acc256::test_default();
    let tree = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        acc.clone(),
        &signer,
    );
    Fixture {
        tree,
        signer,
        table,
        acc,
    }
}

impl Fixture {
    fn client(&self) -> ClientVerifier<'_, 4> {
        ClientVerifier::new(&self.acc, self.table.schema())
    }
}

#[test]
fn select_all_verifies() {
    let f = fixture(100, 4);
    for (lo, hi) in [(0u64, 99u64), (10, 30), (50, 50), (0, 0), (90, 200)] {
        let q = RangeQuery::select_all(lo, hi);
        let resp = execute(&f.tree, &q, None);
        let report = f
            .client()
            .verify(f.signer.verifier().as_ref(), &q, &resp)
            .unwrap_or_else(|e| panic!("range [{lo},{hi}]: {e}"));
        assert_eq!(report.rows, f.table.range(lo, hi).count());
    }
}

#[test]
fn empty_result_verifies() {
    let f = fixture(50, 4);
    // Query a key gap beyond the data.
    let q = RangeQuery::select_all(200, 300);
    let resp = execute(&f.tree, &q, None);
    assert!(resp.rows.is_empty());
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn projection_verifies_and_shrinks_result() {
    let f = fixture(60, 4);
    let q_all = RangeQuery::select_all(10, 40);
    let q_proj = RangeQuery::project(10, 40, vec![0, 2]);
    let full = execute(&f.tree, &q_all, None);
    let proj = execute(&f.tree, &q_proj, None);

    f.client()
        .verify(f.signer.verifier().as_ref(), &q_proj, &proj)
        .unwrap();

    // Projection returns fewer result bytes but a larger VO (D_P).
    let fs = measure_response(&full);
    let ps = measure_response(&proj);
    assert!(ps.result_bytes < fs.result_bytes);
    assert!(ps.vo_bytes > fs.vo_bytes);
    assert_eq!(proj.vo.d_p.len(), proj.rows.len() * 2); // 4 cols - 2 kept
}

#[test]
fn single_column_projection() {
    let f = fixture(30, 4);
    let q = RangeQuery::project(0, 29, vec![3]);
    let resp = execute(&f.tree, &q, None);
    assert!(resp.rows.iter().all(|r| r.values.len() == 1));
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn predicate_selection_gaps_covered() {
    let f = fixture(80, 4);
    // Non-key predicate on the numeric column (index 3): keep < 50.
    let pred = |t: &Tuple| matches!(t.values[3], Value::Int(v) if v < 50);
    let q = RangeQuery::select_all(0, 79);
    let resp = execute(&f.tree, &q, Some(&pred));
    let expected = f.table.range(0, 79).filter(|t| pred(t)).count();
    assert_eq!(resp.rows.len(), expected);
    assert!(expected < 80, "workload should have both classes");
    // Gaps are tuple digests in D_S.
    assert!(resp.vo.d_s.len() >= 80 - expected);
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn predicate_plus_projection() {
    let f = fixture(80, 5);
    let pred = |t: &Tuple| matches!(t.values[3], Value::Int(v) if v % 2 == 0);
    let q = RangeQuery::project(5, 70, vec![0, 3]);
    let resp = execute(&f.tree, &q, Some(&pred));
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn vo_entries_order_independent() {
    // Commutativity: shuffling D_S and D_P must not affect verification.
    let f = fixture(100, 4);
    let q = RangeQuery::project(20, 70, vec![1]);
    let mut resp = execute(&f.tree, &q, None);
    resp.vo.d_s.reverse();
    let mid = resp.vo.d_p.len() / 2;
    resp.vo.d_p.rotate_left(mid);
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn vo_size_independent_of_database_size() {
    // The paper's headline: VO grows with the result, not with N_R.
    let q = RangeQuery::select_all(100, 119);
    let mut sizes = Vec::new();
    for rows in [500u64, 2_000, 8_000] {
        let table = WorkloadSpec::new(rows, 4, 10).build();
        let signer = MockSigner::new(7);
        let tree: VbTree<4> = VbTree::bulk_load(
            &table,
            VbTreeConfig::with_fanout(16),
            Acc256::test_default(),
            &signer,
        );
        let resp = execute(&tree, &q, None);
        assert_eq!(resp.rows.len(), 20);
        sizes.push(resp.vo.digest_count());
    }
    // Digest count bounded by ~(fanout-1)·2·height of the *enveloping
    // subtree* which only depends on the result size; allow slack for
    // alignment differences but forbid growth proportional to N_R.
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        max <= min + 2 * 16,
        "VO sizes {sizes:?} must not grow with table size"
    );
}

// ---------------------------------------------------------------------
// Tamper detection
// ---------------------------------------------------------------------

#[test]
fn tampered_value_detected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    resp.rows[3].values[1] = Value::from("forged");
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::DigestMismatch);
}

#[test]
fn spurious_tuple_detected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    // Inject a plausible-looking tuple at an unused key.
    let forged = vbx_core::ResultRow {
        key: 25,
        values: resp.rows[0].values.clone(),
    };
    resp.rows.retain(|r| r.key != 25);
    resp.rows.push(forged);
    resp.rows.sort_by_key(|r| r.key);
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::DigestMismatch);
}

#[test]
fn dropped_tuple_detected_without_digest_reclassification() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    resp.rows.remove(5);
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::DigestMismatch);
}

#[test]
fn tampered_key_detected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    resp.rows[0].key = 11; // moved to a key that is itself in range
    resp.rows.sort_by_key(|r| r.key);
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    // Either duplicate-key ordering or digest mismatch, depending on
    // whether key 11 was already present.
    assert!(matches!(
        err,
        VerifyError::DigestMismatch | VerifyError::RowsUnsorted
    ));
}

#[test]
fn out_of_range_row_rejected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    resp.rows[0].key = 5;
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert!(matches!(err, VerifyError::RowOutOfRange { key: 5 }));
}

#[test]
fn forged_ds_digest_detected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    // Attacker swaps a D_S exponent (e.g. to hide a modified sibling).
    let acc = &f.acc;
    resp.vo.d_s[0].exp = acc.exp_from_bytes(b"attacker");
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::BadSignature { part: "D_S" });
}

#[test]
fn forged_top_digest_detected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    resp.vo.top.exp = f.acc.exp_from_bytes(b"attacker-root");
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::BadSignature { part: "top" });
}

#[test]
fn wrong_key_rejected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let resp = execute(&f.tree, &q, None);
    let wrong = MockSigner::new(999);
    let err = f
        .client()
        .verify(wrong.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert!(matches!(err, VerifyError::BadSignature { .. }));
}

#[test]
fn dp_count_mismatch_rejected() {
    let f = fixture(50, 4);
    let q = RangeQuery::project(10, 30, vec![0]);
    let mut resp = execute(&f.tree, &q, None);
    resp.vo.d_p.pop();
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert!(matches!(err, VerifyError::ProjectionCountMismatch { .. }));
}

#[test]
fn role_confusion_rejected() {
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let mut resp = execute(&f.tree, &q, None);
    // Replay an attribute digest inside D_S.
    let q2 = RangeQuery::project(10, 30, vec![0]);
    let resp2 = execute(&f.tree, &q2, None);
    resp.vo.d_s.push(resp2.vo.d_p[0].clone());
    let err = f
        .client()
        .verify(f.signer.verifier().as_ref(), &q, &resp)
        .unwrap_err();
    assert_eq!(err, VerifyError::WrongRole { part: "D_S" });
}

// ---------------------------------------------------------------------
// Known limitation (documented): digest-reclassification drops
// ---------------------------------------------------------------------

#[test]
fn drop_with_reclassification_is_undetectable_as_published() {
    // The paper's trust model (§3.1) assumes edge servers do not
    // *maliciously* drop qualifying tuples. Indeed, an edge that moves a
    // result tuple's signed digest into D_S produces a VO that still
    // verifies — this documents the scheme's published completeness
    // boundary.
    let f = fixture(50, 4);
    let q = RangeQuery::select_all(10, 30);
    let honest = execute(&f.tree, &q, None);
    let pred = |t: &Tuple| t.key != 20; // adversarial "filter"
    let dropped = execute(&f.tree, &q, Some(&pred));
    assert_eq!(dropped.rows.len(), honest.rows.len() - 1);
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &dropped)
        .unwrap();
}

// ---------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------

#[test]
fn wire_roundtrip_preserves_verification() {
    let f = fixture(60, 4);
    let q = RangeQuery::project(5, 45, vec![0, 3]);
    let resp = execute(&f.tree, &q, None);
    let bytes = encode_response(&resp);
    assert_eq!(bytes.len(), measure_response(&resp).total());
    let decoded = decode_response(&bytes, &f.acc).unwrap();
    assert_eq!(decoded.rows.len(), resp.rows.len());
    f.client()
        .verify(f.signer.verifier().as_ref(), &q, &decoded)
        .unwrap();
}

#[test]
fn wire_rejects_corruption() {
    let f = fixture(20, 4);
    let q = RangeQuery::select_all(0, 10);
    let resp = execute(&f.tree, &q, None);
    let bytes = encode_response(&resp);
    // Truncations must error, not panic.
    for cut in [0usize, 3, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(decode_response(&bytes[..cut], &f.acc).is_err(), "cut {cut}");
    }
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(decode_response(&bad, &f.acc).is_err());
    // Trailing garbage.
    let mut long = bytes;
    long.push(0);
    assert!(decode_response(&long, &f.acc).is_err());
}

#[test]
fn rsa_end_to_end() {
    // Full asymmetric path: RSA-512 fixture key.
    let table = WorkloadSpec::new(30, 3, 8).build();
    let signer = rsa::fixture_keypair_512();
    let acc = Acc256::test_default();
    let tree: VbTree<4> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);
    let q = RangeQuery::select_all(5, 20);
    let resp = execute(&tree, &q, None);
    let client = ClientVerifier::new(&acc, table.schema());
    client
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
    // Tamper still detected under RSA.
    let mut bad = resp;
    bad.rows[0].values[0] = Value::from("evil");
    assert!(client.verify(signer.verifier().as_ref(), &q, &bad).is_err());
}
