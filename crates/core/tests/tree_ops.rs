//! Structural tests of the VB-tree: build, lookup, insert, delete,
//! digest maintenance, invariants.

use vbx_core::{VbTree, VbTreeConfig};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::Acc256;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::{Table, Tuple, Value};

fn small_tree(rows: u64, fanout: usize) -> (VbTree<4>, MockSigner, Table) {
    let table = WorkloadSpec::new(rows, 3, 8).build();
    let signer = MockSigner::new(1);
    let tree = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        Acc256::test_default(),
        &signer,
    );
    (tree, signer, table)
}

#[test]
fn bulk_load_shapes() {
    let (tree, signer, table) = small_tree(100, 4);
    assert_eq!(tree.len(), 100);
    // 100 tuples at fan-out 4: 25 leaves, 7 internals, 2 internals, 1 root
    assert_eq!(tree.height(), 4);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    assert_eq!(tree.schema(), table.schema());
}

#[test]
fn parallel_bulk_load_identical_to_sequential() {
    let table = WorkloadSpec::new(500, 4, 10).build();
    let signer = MockSigner::new(9);
    let seq = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(8),
        Acc256::test_default(),
        &signer,
    );
    for threads in [1usize, 2, 3, 8] {
        let par = VbTree::bulk_load_parallel(
            &table,
            VbTreeConfig::with_fanout(8),
            Acc256::test_default(),
            &signer,
            threads,
        );
        assert_eq!(par.len(), seq.len());
        assert_eq!(par.height(), seq.height());
        assert_eq!(par.root_digest(), seq.root_digest(), "threads {threads}");
        // The whole structure, not just the root: identical wire bytes.
        assert_eq!(vbx_core::encode_tree(&par), vbx_core::encode_tree(&seq));
        // Meter parity: the fan-out must not change the counted work.
        assert_eq!(par.meter().hash_ops, seq.meter().hash_ops);
        assert_eq!(par.meter().combine_ops, seq.meter().combine_ops);
        assert_eq!(par.meter().sign_ops, seq.meter().sign_ops);
        par.check_integrity(Some(signer.verifier().as_ref()))
            .unwrap();
    }
}

#[test]
fn parallel_bulk_load_empty_and_tiny_tables() {
    for rows in [0u64, 1, 5] {
        let table = WorkloadSpec::new(rows, 3, 8).build();
        let signer = MockSigner::new(2);
        let par = VbTree::bulk_load_parallel(
            &table,
            VbTreeConfig::with_fanout(4),
            Acc256::test_default(),
            &signer,
            4,
        );
        assert_eq!(par.len(), rows);
        par.check_integrity(Some(signer.verifier().as_ref()))
            .unwrap();
    }
}

#[test]
fn bulk_load_single_leaf() {
    let (tree, signer, _) = small_tree(3, 8);
    assert_eq!(tree.height(), 1);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn empty_tree_valid() {
    let spec = WorkloadSpec::new(0, 2, 8);
    let signer = MockSigner::new(2);
    let tree: VbTree<4> = VbTree::new(
        spec.schema(),
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer,
    );
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    assert!(tree.get(0).is_none());
    assert!(tree.range(0, u64::MAX).is_empty());
}

#[test]
fn point_lookup() {
    let (tree, _, table) = small_tree(64, 4);
    for row in table.iter() {
        assert_eq!(tree.get(row.key), Some(row));
    }
    assert!(tree.get(1_000_000).is_none());
}

#[test]
fn range_scan_matches_table() {
    let (tree, _, table) = small_tree(64, 4);
    for (lo, hi) in [(0u64, 63u64), (5, 5), (10, 20), (60, 200), (64, 70)] {
        let from_tree: Vec<u64> = tree.range(lo, hi).iter().map(|t| t.key).collect();
        let from_table: Vec<u64> = table.range(lo, hi).map(|t| t.key).collect();
        assert_eq!(from_tree, from_table, "range [{lo}, {hi}]");
    }
}

#[test]
fn insert_incremental_and_valid() {
    let spec = WorkloadSpec::new(0, 3, 8);
    let signer = MockSigner::new(3);
    let mut tree: VbTree<4> = VbTree::new(
        spec.schema(),
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer,
    );
    let schema = tree.schema().clone();
    // Insert in a shuffled-ish order to exercise splits everywhere.
    let keys: Vec<u64> = (0..60).map(|i| (i * 37) % 120).collect();
    for &k in &keys {
        let t = Tuple::new(
            &schema,
            k,
            vec![
                Value::from(format!("v{k}")),
                Value::from(format!("w{k}")),
                Value::from(k as i64),
            ],
        )
        .unwrap();
        tree.insert(t, &signer).unwrap();
        tree.check_integrity(Some(signer.verifier().as_ref()))
            .unwrap();
    }
    assert_eq!(tree.len(), 60);
    assert!(tree.height() >= 3, "fan-out 4 over 60 keys must be deep");
}

#[test]
fn insert_duplicate_rejected() {
    let (mut tree, signer, table) = small_tree(10, 4);
    let existing = table.iter().next().unwrap().clone();
    let err = tree.insert(existing, &signer).unwrap_err();
    assert!(matches!(err, vbx_core::CoreError::DuplicateKey(_)));
    assert_eq!(tree.len(), 10);
}

#[test]
fn insert_bumps_versions() {
    let (mut tree, signer, _) = small_tree(4, 4);
    let v0 = tree.version();
    let schema = tree.schema().clone();
    let t = Tuple::new(
        &schema,
        1000,
        vec![Value::from("x"), Value::from("y"), Value::from(1i64)],
    )
    .unwrap();
    tree.insert(t, &signer).unwrap();
    assert_eq!(tree.version(), v0 + 1);
}

#[test]
fn delete_recompute_and_valid() {
    let (mut tree, signer, _) = small_tree(50, 4);
    // Delete every third key, validating as we go.
    for k in (0..50).step_by(3) {
        let removed = tree.delete(k, &signer).unwrap();
        assert_eq!(removed.key, k);
        tree.check_integrity(Some(signer.verifier().as_ref()))
            .unwrap();
    }
    assert!(tree.get(0).is_none());
    assert!(tree.get(1).is_some());
    assert!(matches!(
        tree.delete(0, &signer),
        Err(vbx_core::CoreError::KeyNotFound(0))
    ));
}

#[test]
fn delete_everything_then_reuse() {
    let (mut tree, signer, _) = small_tree(30, 4);
    for k in 0..30 {
        tree.delete(k, &signer).unwrap();
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    // Tree remains usable.
    let schema = tree.schema().clone();
    let t = Tuple::new(
        &schema,
        7,
        vec![Value::from("a"), Value::from("b"), Value::from(7i64)],
    )
    .unwrap();
    tree.insert(t, &signer).unwrap();
    assert_eq!(tree.len(), 1);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn delete_uncombine_matches_recompute() {
    let (mut a, signer, _) = small_tree(40, 4);
    let (mut b, _, _) = small_tree(40, 4);
    for k in [3u64, 17, 20, 39, 0] {
        a.delete(k, &signer).unwrap();
        b.delete_uncombine(k, &signer).unwrap();
        a.check_integrity(Some(signer.verifier().as_ref())).unwrap();
        b.check_integrity(Some(signer.verifier().as_ref())).unwrap();
        assert_eq!(
            a.root_digest().exp,
            b.root_digest().exp,
            "uncombine delete must produce identical digests"
        );
    }
}

#[test]
fn delete_range_batch() {
    let (mut tree, signer, _) = small_tree(100, 4);
    let removed = tree.delete_range(20, 59, &signer).unwrap();
    assert_eq!(removed.len(), 40);
    assert_eq!(tree.len(), 60);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    assert!(tree.get(20).is_none());
    assert!(tree.get(59).is_none());
    assert!(tree.get(19).is_some());
    assert!(tree.get(60).is_some());
    // Deleting an empty range is a no-op.
    let v = tree.version();
    let none = tree.delete_range(200, 300, &signer).unwrap();
    assert!(none.is_empty());
    assert_eq!(tree.version(), v);
}

#[test]
fn delete_range_everything() {
    let (mut tree, signer, _) = small_tree(30, 4);
    let removed = tree.delete_range(0, 1_000_000, &signer).unwrap();
    assert_eq!(removed.len(), 30);
    assert!(tree.is_empty());
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn root_digest_equals_product_of_all_tuples() {
    // The flattening property: the root exponent is the product of every
    // tuple exponent, independent of tree shape.
    let (t4, signer, _) = small_tree(50, 4);
    let (t8, _, _) = small_tree(50, 8);
    let (t3, _, _) = small_tree(50, 3);
    assert_eq!(t4.root_digest().exp, t8.root_digest().exp);
    assert_eq!(t4.root_digest().exp, t3.root_digest().exp);
    let _ = signer;
}

#[test]
fn incremental_insert_equals_rebuild() {
    // Build 0..40 by bulk load vs. by 40 inserts: same root exponent.
    let table = WorkloadSpec::new(40, 3, 8).build();
    let signer = MockSigner::new(1);
    let bulk: VbTree<4> = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer,
    );
    let mut incr: VbTree<4> = VbTree::new(
        table.schema().clone(),
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer,
    );
    for row in table.iter() {
        incr.insert(row.clone(), &signer).unwrap();
    }
    assert_eq!(bulk.root_digest().exp, incr.root_digest().exp);
}

#[test]
fn meter_counts_build_work() {
    let (mut tree, _, _) = small_tree(20, 4);
    let m = tree.take_meter();
    // 20 tuples × 3 attributes hashed.
    assert_eq!(m.hash_ops, 60);
    // Each attribute signed + each tuple signed + nodes.
    assert!(m.sign_ops >= 60 + 20);
    assert!(m.combine_ops > 0);
    // Meter resets.
    assert_eq!(tree.meter().hash_ops, 0);
}

#[test]
fn stats_shape() {
    let (tree, _, _) = small_tree(64, 4);
    let s = tree.stats();
    assert_eq!(s.tuples, 64);
    assert_eq!(s.leaves, 16);
    assert_eq!(s.height, 3);
    assert_eq!(s.fanout, 4);
    assert!(s.nodes > 16 + 4);
    assert_eq!(s.logical_bytes, s.nodes * 4096);
    assert!(s.digest_bytes > 0);
}

#[test]
fn geometric_fanout_used_by_default() {
    let table = WorkloadSpec::new(500, 2, 8).build();
    let signer = MockSigner::new(4);
    let tree: VbTree<4> = VbTree::bulk_load(
        &table,
        VbTreeConfig::default(),
        Acc256::test_default(),
        &signer,
    );
    // Default geometry fan-out is 114: 500 tuples → 5 leaves, height 2.
    assert_eq!(tree.stats().fanout, 114);
    assert_eq!(tree.height(), 2);
}

#[test]
fn key_version_tracks_signer() {
    let table = WorkloadSpec::new(5, 2, 8).build();
    let signer_v1 = MockSigner::with_version(9, 1);
    let mut tree: VbTree<4> = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer_v1,
    );
    assert_eq!(tree.key_version(), 1);
    let signer_v2 = MockSigner::with_version(9, 2);
    let schema = tree.schema().clone();
    let t = Tuple::new(&schema, 99, vec![Value::from("a"), Value::from(1i64)]).unwrap();
    tree.insert(t, &signer_v2).unwrap();
    assert_eq!(tree.key_version(), 2);
}

#[test]
fn batch_insert_matches_pointwise_with_fewer_signatures() {
    let (mut point, signer, _) = small_tree(50, 4);
    let (mut batch, _, _) = small_tree(50, 4);
    let schema = point.schema().clone();
    let make = |k: u64| {
        Tuple::new(
            &schema,
            k,
            vec![
                Value::from(format!("b{k}")),
                Value::from(format!("c{k}")),
                Value::from(k as i64),
            ],
        )
        .unwrap()
    };
    let keys: Vec<u64> = (1_000..1_100).collect();

    point.take_meter();
    for &k in &keys {
        point.insert(make(k), &signer).unwrap();
    }
    let point_signs = point.take_meter().sign_ops;

    batch.take_meter();
    let n = batch
        .insert_batch(keys.iter().map(|&k| make(k)).collect(), &signer)
        .unwrap();
    let batch_signs = batch.take_meter().sign_ops;

    assert_eq!(n, 100);
    assert_eq!(point.len(), batch.len());
    assert_eq!(point.root_digest().exp, batch.root_digest().exp);
    batch
        .check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    // Amortisation: shared path digests signed once, not per insert.
    assert!(
        batch_signs * 2 < point_signs,
        "batch {batch_signs} signs vs pointwise {point_signs}"
    );
}

#[test]
fn batch_insert_validates_before_mutating() {
    let (mut tree, signer, table) = small_tree(20, 4);
    let schema = tree.schema().clone();
    let exp_before = tree.root_digest().exp;
    let good = Tuple::new(
        &schema,
        500,
        vec![Value::from("a"), Value::from("b"), Value::from(1i64)],
    )
    .unwrap();
    let dup = table.iter().next().unwrap().clone();
    let err = tree
        .insert_batch(vec![good.clone(), dup], &signer)
        .unwrap_err();
    assert!(matches!(err, vbx_core::CoreError::DuplicateKey(_)));
    // Nothing applied.
    assert_eq!(tree.len(), 20);
    assert_eq!(tree.root_digest().exp, exp_before);
    assert!(tree.get(500).is_none());
    // Duplicate *within* the batch also rejected up front.
    let err2 = tree
        .insert_batch(vec![good.clone(), good], &signer)
        .unwrap_err();
    assert!(matches!(err2, vbx_core::CoreError::DuplicateKey(500)));
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
}

#[test]
fn batch_insert_result_verifies_end_to_end() {
    let (mut tree, signer, _) = small_tree(30, 4);
    let schema = tree.schema().clone();
    let batch: Vec<Tuple> = (100..160)
        .map(|k| {
            Tuple::new(
                &schema,
                k,
                vec![
                    Value::from(format!("x{k}")),
                    Value::from(format!("y{k}")),
                    Value::from(k as i64),
                ],
            )
            .unwrap()
        })
        .collect();
    tree.insert_batch(batch, &signer).unwrap();
    let q = vbx_core::RangeQuery::select_all(90, 140);
    let resp = vbx_core::execute(&tree, &q, None);
    let acc = tree.accumulator().clone();
    vbx_core::ClientVerifier::new(&acc, &schema)
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
    assert_eq!(resp.rows.len(), 41);
}
