//! Differential testing of the compact (`VBX4`) stack-machine VOs
//! against the legacy flat encoding: same rows, same verdicts under
//! every [`TamperMode`], never more digests or (aggregated) bytes, and
//! the streaming verifier agrees with the materialised one while
//! holding at most O(tree depth) digest frames.

use proptest::prelude::*;
use vbx_core::{
    decode_compact_response, encode_compact_response, execute, execute_compact,
    execute_multi_compact, measure_compact, measure_response, ClientVerifier, RangeQuery,
    TamperMode, VbScheme, VbTree, VbTreeConfig, VerifyError,
};
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::{rsa, Acc256};
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Tuple;

fn build_tree(rows: u64, fanout: usize) -> (VbTree<4>, MockSigner) {
    let table = WorkloadSpec::new(rows, 3, 6).build();
    let signer = MockSigner::new(42);
    let tree = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(fanout),
        Acc256::test_default(),
        &signer,
    );
    (tree, signer)
}

#[test]
fn compact_matches_legacy_rows_and_digest_count() {
    let (tree, signer) = build_tree(80, 5);
    let q = RangeQuery::select_all(10, 55);
    let legacy = execute(&tree, &q, None);
    let compact = execute_compact(&tree, &q, None, None);

    assert_eq!(compact.parts.len(), 1);
    assert_eq!(compact.parts[0].rows, legacy.rows);
    // Same digests travel, just arranged as an op stream.
    assert_eq!(compact.digest_count(), legacy.vo.digest_count());
    assert!(compact.agg_sig.is_none());

    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let report = client
        .verify_compact(signer.verifier().as_ref(), &[q], &compact)
        .unwrap();
    assert_eq!(report.rows, legacy.rows.len());
    assert!(report.peak_stack_depth <= tree.height() as usize + 1);
}

#[test]
fn aggregated_compact_checks_one_signature_and_shrinks_vo() {
    let (tree, signer) = build_tree(120, 5);
    let q = RangeQuery::select_all(17, 71);
    let legacy = execute(&tree, &q, None);
    let verifier = signer.verifier();
    let compact = execute_compact(&tree, &q, None, Some(verifier.as_ref()));

    assert!(compact.agg_sig.is_some());
    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let report = client
        .verify_compact(verifier.as_ref(), std::slice::from_ref(&q), &compact)
        .unwrap();
    // One condensed check replaces 1 + |D_S| + |D_P| individual ones.
    assert_eq!(report.signatures_checked, 1);
    let legacy_report = client.verify(verifier.as_ref(), &q, &legacy).unwrap();
    assert!(legacy_report.signatures_checked > 1);

    let flat = measure_response(&legacy).vo_bytes;
    let compacted = measure_compact(&compact).vo_bytes;
    assert!(
        compacted <= flat,
        "compact VO {compacted}B exceeds flat {flat}B"
    );
}

#[test]
fn wire_roundtrip_is_byte_identical_and_measured_exactly() {
    let (tree, signer) = build_tree(90, 4);
    let verifier = signer.verifier();
    let queries = vec![
        RangeQuery::select_all(5, 40),
        RangeQuery::project(30, 80, vec![0, 2]),
    ];
    let compact = execute_multi_compact(&tree, &queries, None, Some(verifier.as_ref()));

    let bytes = encode_compact_response(&compact);
    let size = measure_compact(&compact);
    assert_eq!(size.total(), bytes.len());

    let decoded = decode_compact_response(&bytes, tree.accumulator()).unwrap();
    assert_eq!(encode_compact_response(&decoded), bytes);

    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    client
        .verify_compact(verifier.as_ref(), &queries, &decoded)
        .unwrap();
}

#[test]
fn streaming_agrees_with_materialized_and_stays_shallow() {
    let (tree, signer) = build_tree(150, 4);
    let verifier = signer.verifier();
    let queries = vec![
        RangeQuery::select_all(10, 60),
        RangeQuery::select_all(50, 130),
    ];
    let compact = execute_multi_compact(&tree, &queries, None, Some(verifier.as_ref()));
    let bytes = encode_compact_response(&compact);

    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let materialized = client
        .verify_compact(verifier.as_ref(), &queries, &compact)
        .unwrap();

    let mut streamed_rows: Vec<Vec<vbx_core::ResultRow>> = vec![Vec::new(); queries.len()];
    let streamed = client
        .verify_compact_stream(verifier.as_ref(), &queries, &bytes, &mut |pi, row| {
            streamed_rows[pi].push(row)
        })
        .unwrap();

    assert_eq!(streamed.rows, materialized.rows);
    assert_eq!(streamed.signatures_checked, materialized.signatures_checked);
    assert_eq!(streamed.peak_stack_depth, materialized.peak_stack_depth);
    assert!(streamed.peak_stack_depth <= tree.height() as usize + 1);
    for (part, rows) in compact.parts.iter().zip(&streamed_rows) {
        assert_eq!(&part.rows, rows);
    }
}

#[test]
fn multi_query_dedup_never_ships_more_than_independent_parts() {
    let (tree, signer) = build_tree(140, 4);
    let verifier = signer.verifier();
    // Overlapping ranges share envelope digests.
    let queries = vec![
        RangeQuery::select_all(20, 90),
        RangeQuery::select_all(60, 120),
        RangeQuery::select_all(85, 100),
    ];
    let merged = execute_multi_compact(&tree, &queries, None, Some(verifier.as_ref()));
    let independent: usize = queries
        .iter()
        .map(|q| execute_compact(&tree, q, None, None).digest_count())
        .sum();
    assert!(
        merged.digest_count() <= independent,
        "merged {} > independent {}",
        merged.digest_count(),
        independent
    );

    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let report = client
        .verify_compact(verifier.as_ref(), &queries, &merged)
        .unwrap();
    assert_eq!(report.signatures_checked, 1);
}

#[test]
fn condensed_rsa_batch_verifies_with_one_modexp_sweep() {
    let table = WorkloadSpec::new(48, 3, 6).build();
    let signer = rsa::fixture_keypair_crt_1024();
    let acc = Acc256::test_default();
    let tree = VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);
    let verifier = signer.verifier();

    let queries = vec![
        RangeQuery::select_all(5, 20),
        RangeQuery::select_all(25, 40),
    ];
    let compact = execute_multi_compact(&tree, &queries, None, Some(verifier.as_ref()));
    assert!(compact.agg_sig.is_some());

    let schema = tree.schema().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let report = client
        .verify_compact(verifier.as_ref(), &queries, &compact)
        .unwrap();
    assert_eq!(report.signatures_checked, 1);

    // A tampered batch must not survive the condensed check.
    let mut forged = compact.clone();
    if let Some(row) = forged.parts[0].rows.first_mut() {
        row.key ^= 1;
    }
    assert!(client
        .verify_compact(verifier.as_ref(), &queries, &forged)
        .is_err());
}

#[test]
fn bare_digest_without_aggregate_is_rejected() {
    let (tree, signer) = build_tree(60, 4);
    let verifier = signer.verifier();
    let q = RangeQuery::select_all(10, 40);
    let mut compact = execute_compact(&tree, &q, None, Some(verifier.as_ref()));
    // Strip the aggregate: the bare digests now have no authentication.
    compact.agg_sig = None;
    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    assert!(matches!(
        client.verify_compact(verifier.as_ref(), &[q], &compact),
        Err(VerifyError::BadSignature { part: "aggregate" })
    ));
}

/// One differential case: legacy, compact (materialised), and compact
/// (streaming) must return rows byte-identically and agree on the
/// verdict under the given tamper mode.
fn differential_case(
    rows: u64,
    fanout: usize,
    lo: u64,
    span: u64,
    projection: Option<Vec<usize>>,
    pred_modulus: Option<u64>,
    mode: TamperMode,
) {
    let (tree, signer) = build_tree(rows, fanout);
    let verifier = signer.verifier();
    let q = RangeQuery {
        lo,
        hi: lo.saturating_add(span),
        projection,
    };
    let queries = [q.clone()];
    let pred = pred_modulus.map(|m| move |t: &Tuple| t.key % m != 0);
    let pred_ref: Option<&dyn Fn(&Tuple) -> bool> =
        pred.as_ref().map(|p| p as &dyn Fn(&Tuple) -> bool);

    let scheme = VbScheme::new(
        tree.accumulator().clone(),
        VbTreeConfig::with_fanout(fanout),
    );
    let mut legacy = execute(&tree, &q, pred_ref);
    let mut compact = execute_multi_compact(&tree, &queries, pred_ref, Some(verifier.as_ref()));
    assert_eq!(compact.parts[0].rows, legacy.rows, "result rows diverge");
    assert!(compact.digest_count() <= legacy.vo.digest_count());
    assert!(measure_compact(&compact).vo_bytes <= measure_response(&legacy).vo_bytes);

    // DropAndReclassify needs a victim key that is actually in the
    // result; the paper's completeness boundary means both encodings
    // accept the re-executed response.
    let mode = match mode {
        TamperMode::DropAndReclassify { .. } => match legacy.rows.get(legacy.rows.len() / 2) {
            Some(row) => TamperMode::DropAndReclassify { key: row.key },
            None => return,
        },
        m => m,
    };
    use vbx_core::AuthScheme;
    scheme.tamper(&tree, &q, &mut legacy, &mode);
    scheme.tamper_compact(
        &tree,
        &queries,
        &mut compact,
        &mode,
        Some(verifier.as_ref()),
    );

    let schema = tree.schema().clone();
    let acc = tree.accumulator().clone();
    let client = ClientVerifier::new(&acc, &schema);
    let legacy_verdict = client.verify(verifier.as_ref(), &q, &legacy);
    let compact_verdict = client.verify_compact(verifier.as_ref(), &queries, &compact);
    assert_eq!(
        legacy_verdict.is_ok(),
        compact_verdict.is_ok(),
        "verdicts diverge under {mode:?}: legacy {legacy_verdict:?} vs compact {compact_verdict:?}"
    );

    let bytes = encode_compact_response(&compact);
    let stream_verdict =
        client.verify_compact_stream(verifier.as_ref(), &queries, &bytes, &mut |_, _| {});
    assert_eq!(
        compact_verdict.is_ok(),
        stream_verdict.is_ok(),
        "streaming verdict diverges under {mode:?}"
    );
    if let (Ok(a), Ok(b)) = (&compact_verdict, &stream_verdict) {
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.signatures_checked, b.signatures_checked);
        assert!(b.peak_stack_depth <= tree.height() as usize + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded random trees × queries × projections × predicates ×
    /// tamper modes: the two encodings and the streaming verifier are
    /// indistinguishable in rows and verdicts, and compact never ships
    /// more digests or VO bytes.
    #[test]
    fn compact_and_legacy_are_equivalent(
        rows in 1u64..140,
        fanout in 3usize..9,
        lo in 0u64..160,
        span in 0u64..160,
        keep0 in proptest::bool::ANY,
        keep1 in proptest::bool::ANY,
        keep2 in proptest::bool::ANY,
        pred_modulus in prop_oneof![Just(None), Just(Some(2u64)), Just(Some(3u64))],
        mode in prop_oneof![
            Just(TamperMode::None),
            Just(TamperMode::MutateValue),
            Just(TamperMode::InjectRow),
            Just(TamperMode::DropRow),
            Just(TamperMode::DropAndReclassify { key: 0 }),
        ],
    ) {
        let cols: Vec<usize> = [keep0, keep1, keep2]
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        let projection = (cols.len() < 3).then_some(cols);
        differential_case(rows, fanout, lo, span, projection, pred_modulus, mode);
    }
}
