//! Extension tests: group-width genericity, the access-control/privacy
//! property of edge-side projection, and value-domain Lemma identities.

use vbx_core::{encode_response, execute, ClientVerifier, RangeQuery, VbTree, VbTreeConfig};
use vbx_crypto::accum::Accumulator;
use vbx_crypto::signer::{MockSigner, Signer};
use vbx_crypto::{Acc256, Acc512};
use vbx_mathx::groups;
use vbx_storage::workload::WorkloadSpec;
use vbx_storage::Value;

#[test]
fn works_over_512_bit_group() {
    // The whole pipeline is generic over the accumulator width; run it
    // end-to-end on the 512-bit test group (L = 8).
    let table = WorkloadSpec::new(80, 3, 8).build();
    let signer = MockSigner::new(2);
    let acc = Acc512::test_default_512();
    let tree: VbTree<8> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(5), acc.clone(), &signer);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    let q = RangeQuery::project(10, 60, vec![0, 2]);
    let resp = execute(&tree, &q, None);
    ClientVerifier::new(&acc, table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn works_over_128_bit_group() {
    let table = WorkloadSpec::new(50, 2, 6).build();
    let signer = MockSigner::new(3);
    let acc = Accumulator::<2>::new(groups::test_group_128());
    let tree: VbTree<2> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);
    let q = RangeQuery::select_all(0, 49);
    let resp = execute(&tree, &q, None);
    ClientVerifier::new(&acc, table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn projection_does_not_leak_filtered_values() {
    // Section 2 criticises schemes where "even attributes that are
    // supposed to be filtered out through projection must be returned to
    // users for verification". Here, D_P carries only signed digests —
    // the filtered attribute *values* must not appear anywhere in the
    // serialized response.
    let table = WorkloadSpec::new(60, 4, 24).build();
    let signer = MockSigner::new(4);
    let acc = Acc256::test_default();
    let tree: VbTree<4> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(6), acc.clone(), &signer);

    // Project column 0 only; columns 1..3 are hidden.
    let q = RangeQuery::project(0, 59, vec![0]);
    let resp = execute(&tree, &q, None);
    let wire = encode_response(&resp);

    let mut hidden_checked = 0;
    for row in table.iter() {
        for col in 1..=2 {
            if let Value::Text(s) = &row.values[col] {
                let needle = s.as_bytes();
                assert!(
                    !wire.windows(needle.len()).any(|w| w == needle),
                    "hidden value {s:?} leaked into the wire bytes"
                );
                hidden_checked += 1;
            }
        }
    }
    assert!(hidden_checked >= 100, "the check must actually run");

    // …and the response still verifies.
    ClientVerifier::new(&acc, table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}

#[test]
fn lemma1_value_domain_identity() {
    // Demonstrate equation (4) literally in the value domain:
    // D_N = ((g^{∏ result exps})^{∏ filtered exps})^{∏ branch exps}.
    let table = WorkloadSpec::new(64, 2, 8).build();
    let signer = MockSigner::new(5);
    let acc = Acc256::test_default();
    let tree: VbTree<4> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(4), acc.clone(), &signer);

    let q = RangeQuery::select_all(20, 40);
    let resp = execute(&tree, &q, None);

    // Recompute the result tuples' exponent product from raw values.
    let schema = table.schema();
    let mut result_exp = acc.identity();
    for row in &resp.rows {
        for (col, v) in row.values.iter().enumerate() {
            let e = acc.exp_from_bytes(&schema.attribute_digest_input(col, row.key, v));
            result_exp = acc.combine(&result_exp, &e);
        }
    }
    // Chain of exponentiations, any order: start from g^{result}, then
    // raise by each D_S exponent in turn.
    let mut value = acc.lift(&result_exp);
    for d in &resp.vo.d_s {
        value = acc.lift_pow(&value, &d.exp);
    }
    // Equation (4): equals the lifted top digest.
    assert_eq!(value, acc.lift(&resp.vo.top.exp));
}

#[test]
fn vo_digest_count_scales_with_fanout() {
    // Ablation: D_S is bounded by (2·h_env − 1)(f − 1); bigger fan-outs
    // mean shallower envelopes but more boundary digests per node.
    let table = WorkloadSpec::new(4_000, 3, 8).build();
    let signer = MockSigner::new(6);
    let q = RangeQuery::select_all(1_000, 1_099);
    let mut counts = Vec::new();
    for fanout in [4usize, 16, 64] {
        let tree: VbTree<4> = VbTree::bulk_load(
            &table,
            VbTreeConfig::with_fanout(fanout),
            Acc256::test_default(),
            &signer,
        );
        let resp = execute(&tree, &q, None);
        let h_env = resp.vo.d_s.len();
        counts.push((fanout, h_env));
        // bound check
        let stats = tree.stats();
        let bound = (2 * stats.height as usize + 1) * (fanout - 1) + 2 * fanout;
        assert!(
            h_env <= bound,
            "fanout {fanout}: D_S {h_env} exceeds bound {bound}"
        );
    }
    // All configurations verify; counts recorded for the ablation bench.
    assert_eq!(counts.len(), 3);
}

#[test]
fn md5_based_algebra_end_to_end() {
    // The paper names MD5 as a candidate one-way hash for formula (1);
    // the whole pipeline runs under it (with the era-appropriate caveat
    // about MD5's collision resistance documented in vbx-crypto).
    use vbx_crypto::hash::HashAlgo;
    let table = WorkloadSpec::new(60, 3, 8).build();
    let signer = MockSigner::new(7);
    let acc = Accumulator::<4>::with_hash(groups::test_group_256(), HashAlgo::Md5);
    let tree: VbTree<4> =
        VbTree::bulk_load(&table, VbTreeConfig::with_fanout(5), acc.clone(), &signer);
    tree.check_integrity(Some(signer.verifier().as_ref()))
        .unwrap();
    let q = RangeQuery::project(5, 40, vec![0, 2]);
    let resp = execute(&tree, &q, None);
    ClientVerifier::new(&acc, table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();

    // A client configured with the wrong hash cannot verify: the digest
    // algebra is part of the public parameters.
    let sha_acc = Accumulator::<4>::with_hash(groups::test_group_256(), HashAlgo::Sha256);
    assert!(ClientVerifier::new(&sha_acc, table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .is_err());
}

#[test]
fn envelope_node_ids_cover_the_query() {
    // The S-lock set of §3.4: every node whose subtree overlaps the
    // range, rooted at the enveloping top.
    let table = WorkloadSpec::new(100, 2, 8).build();
    let signer = MockSigner::new(8);
    let tree: VbTree<4> = VbTree::bulk_load(
        &table,
        VbTreeConfig::with_fanout(4),
        Acc256::test_default(),
        &signer,
    );
    let ids = tree.envelope_node_ids(30, 60);
    assert!(!ids.is_empty());
    // The root is always in the envelope set (locks are acquired from
    // the top), and the set grows with the range.
    assert!(ids.contains(&tree.root_id()));
    let wider = tree.envelope_node_ids(0, 99);
    assert!(wider.len() >= ids.len());
    // Disjoint narrow ranges lock mostly different nodes.
    let left = tree.envelope_node_ids(0, 5);
    let right = tree.envelope_node_ids(90, 95);
    let overlap = left.iter().filter(|i| right.contains(i)).count();
    assert!(overlap <= 3, "only shared ancestors may overlap");
}
