//! Client-side verification — Lemmas 1 and 2 of the paper.
//!
//! The client recomputes the attribute digests of the values it received
//! (formula (1)), multiplies in every signed digest from `D_P` (filtered
//! attributes) and `D_S` (filtered tuples / non-overlapping branches) in
//! arbitrary order, lifts the total exponent through `h(x) = g^x mod p`,
//! and compares with the signed digest of the enveloping subtree's top
//! node. Any tampering with values, any spurious tuple, or any dropped
//! digest breaks the equation.

use crate::meter::CostMeter;
use crate::vo::{QueryResponse, RangeQuery};
use vbx_crypto::accum::{Accumulator, DigestRole};
use vbx_crypto::SigVerifier;
use vbx_storage::Schema;

/// Why a response failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Result rows are not strictly sorted by key.
    RowsUnsorted,
    /// A result key lies outside the queried range.
    RowOutOfRange {
        /// The offending key.
        key: u64,
    },
    /// A row does not have one value per returned column.
    WrongArity {
        /// The offending key.
        key: u64,
    },
    /// `D_P` does not contain exactly one digest per filtered attribute.
    ProjectionCountMismatch {
        /// Digests expected (`rows × filtered columns`).
        expected: usize,
        /// Digests present.
        actual: usize,
    },
    /// A signature in the VO failed to verify.
    BadSignature {
        /// Which part of the VO was bad ("top", "D_S", "D_P").
        part: &'static str,
    },
    /// A digest appears under the wrong role.
    WrongRole {
        /// Which part of the VO was bad.
        part: &'static str,
    },
    /// The reconstructed digest does not match the signed top digest —
    /// the result was tampered with.
    DigestMismatch,
    /// The projection in the query references an unknown column.
    BadProjection,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::RowsUnsorted => write!(f, "result rows not sorted by key"),
            VerifyError::RowOutOfRange { key } => write!(f, "result key {key} outside range"),
            VerifyError::WrongArity { key } => write!(f, "row {key} has wrong arity"),
            VerifyError::ProjectionCountMismatch { expected, actual } => {
                write!(f, "D_P has {actual} digests, expected {expected}")
            }
            VerifyError::BadSignature { part } => write!(f, "bad signature in {part}"),
            VerifyError::WrongRole { part } => write!(f, "wrong digest role in {part}"),
            VerifyError::DigestMismatch => write!(f, "digest mismatch: result tampered"),
            VerifyError::BadProjection => write!(f, "projection references unknown column"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Successful verification report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Rows verified.
    pub rows: usize,
    /// Signatures checked (`Cost_s` events — the dominant client cost in
    /// the paper's model).
    pub signatures_checked: usize,
    /// Primitive-operation counts.
    pub meter: CostMeter,
}

/// The client-side verifier: the public knowledge a client needs —
/// digest algebra parameters and the schema (names feed formula (1)).
pub struct ClientVerifier<'a, const L: usize> {
    /// Digest algebra (public group parameters).
    pub acc: &'a Accumulator<L>,
    /// Schema of the queried table.
    pub schema: &'a Schema,
}

impl<'a, const L: usize> ClientVerifier<'a, L> {
    /// Create a verifier context.
    pub fn new(acc: &'a Accumulator<L>, schema: &'a Schema) -> Self {
        Self { acc, schema }
    }

    /// Verify a response against the query the client itself issued.
    ///
    /// `verifier` must be the public key obtained from the key registry
    /// for `resp.vo.key_version` — the caller decides whether that
    /// version is *currently* acceptable (see `vbx_crypto::keyreg`).
    pub fn verify(
        &self,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &QueryResponse<L>,
    ) -> Result<VerifyReport, VerifyError> {
        let mut meter = CostMeter::new();
        let num_cols = self.schema.num_columns();
        let returned = query.returned_columns(num_cols);
        if returned.iter().any(|&c| c >= num_cols) {
            return Err(VerifyError::BadProjection);
        }

        // --- structural checks on the rows ---
        let mut prev: Option<u64> = None;
        for row in &resp.rows {
            if row.key < query.lo || row.key > query.hi {
                return Err(VerifyError::RowOutOfRange { key: row.key });
            }
            if let Some(p) = prev {
                if row.key <= p {
                    return Err(VerifyError::RowsUnsorted);
                }
            }
            prev = Some(row.key);
            if row.values.len() != returned.len() {
                return Err(VerifyError::WrongArity { key: row.key });
            }
        }

        let filtered_cols = num_cols - returned.len();
        let expected_dp = resp.rows.len() * filtered_cols;
        if resp.vo.d_p.len() != expected_dp {
            return Err(VerifyError::ProjectionCountMismatch {
                expected: expected_dp,
                actual: resp.vo.d_p.len(),
            });
        }

        // --- recompute attribute digests from returned values ---
        let mut total = self.acc.identity();
        for row in &resp.rows {
            for (slot, &col) in returned.iter().enumerate() {
                let input = self
                    .schema
                    .attribute_digest_input(col, row.key, &row.values[slot]);
                let e = self.acc.exp_from_bytes(&input);
                meter.hash_ops += 1;
                total = self.acc.combine(&total, &e);
                meter.combine_ops += 1;
            }
        }

        // --- D_P: filtered attributes ---
        for d in &resp.vo.d_p {
            if d.role != DigestRole::Attribute {
                return Err(VerifyError::WrongRole { part: "D_P" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_P" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- D_S: filtered tuples and non-overlapping branches ---
        for d in &resp.vo.d_s {
            if d.role != DigestRole::Tuple && d.role != DigestRole::Node {
                return Err(VerifyError::WrongRole { part: "D_S" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_S" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- the signed top digest ---
        if resp.vo.top.role != DigestRole::Node {
            return Err(VerifyError::WrongRole { part: "top" });
        }
        meter.verify_ops += 1;
        if !self.acc.verify_digest(verifier, &resp.vo.top) {
            return Err(VerifyError::BadSignature { part: "top" });
        }

        // --- Lemma 1/2: compare in the value domain, h(x) = g^x mod p ---
        let lifted = self.acc.lift(&total);
        let expected = self.acc.lift(&resp.vo.top.exp);
        meter.lift_ops += 2;
        if lifted != expected {
            return Err(VerifyError::DigestMismatch);
        }

        Ok(VerifyReport {
            rows: resp.rows.len(),
            signatures_checked: meter.verify_ops as usize,
            meter,
        })
    }
}
