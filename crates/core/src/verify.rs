//! Client-side verification — Lemmas 1 and 2 of the paper.
//!
//! The client recomputes the attribute digests of the values it received
//! (formula (1)), multiplies in every signed digest from `D_P` (filtered
//! attributes) and `D_S` (filtered tuples / non-overlapping branches) in
//! arbitrary order, lifts the total exponent through `h(x) = g^x mod p`,
//! and compares with the signed digest of the enveloping subtree's top
//! node. Any tampering with values, any spurious tuple, or any dropped
//! digest breaks the equation.

use crate::meter::CostMeter;
use crate::vo::{CompactResponse, QueryResponse, RangeQuery, ResultRow, VoOp};
use vbx_crypto::accum::{signed_payload, Accumulator, DigestRole, SignedDigest};
use vbx_crypto::{AggregateVerify, SigVerifier, Signature, Signer};
use vbx_mathx::Uint;
use vbx_storage::Schema;

/// Domain-separation tag for freshness-stamp signatures, so a stamp can
/// never be confused with a digest signature (or vice versa).
const STAMP_DOMAIN: &[u8; 8] = b"VBXFRSH1";

/// An owner-signed attestation of the log position: "at logical clock
/// `clock`, the latest committed delta sequence number was `seq`".
///
/// This is the signed part of the root bundle an edge republishes with
/// its responses. Edges cannot forge a *newer* stamp (they hold no
/// signing key), so a client that knows the owner's current position can
/// bound how stale an **honest-but-lagging** replica is — the lazy-trust
/// gap WedgeChain formalises for edge-cloud stores. The owner refreshes
/// the stamp on every commit and on explicit heartbeats, so `clock` also
/// proves recent contact when no updates flow.
///
/// **Threat-model boundary:** the stamp attests the owner's position,
/// not the snapshot the edge actually served from. A *malicious* edge
/// that keeps receiving stamps can pair its newest stamp with an older
/// (still authentically signed) snapshot; integrity is still guaranteed
/// by the VO, and bounded staleness against such an edge falls back to
/// the paper's key-rotation validity windows (`KeyFreshnessPolicy`).
/// Binding the served root digest into the stamp is a roadmap item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreshnessStamp {
    /// Number of committed deltas the stamp attests to (the owner's
    /// next expected sequence number).
    pub seq: u64,
    /// Owner's logical clock at signing time.
    pub clock: u64,
    /// Key version the stamp was signed under (signed into the
    /// message, so it cannot be rewritten). After a key rotation an
    /// edge still serving old-key VOs has no stamp verifiable under
    /// that key — reported as `Stale`, not as tampering.
    pub key_version: u32,
    /// Signature over the domain-tagged `(seq, clock, key_version)`
    /// message.
    pub sig: Signature,
}

impl FreshnessStamp {
    /// The exact bytes the owner signs.
    pub fn message(seq: u64, clock: u64, key_version: u32) -> [u8; 28] {
        let mut msg = [0u8; 28];
        msg[..8].copy_from_slice(STAMP_DOMAIN);
        msg[8..16].copy_from_slice(&seq.to_be_bytes());
        msg[16..24].copy_from_slice(&clock.to_be_bytes());
        msg[24..28].copy_from_slice(&key_version.to_be_bytes());
        msg
    }

    /// Trusted: sign a stamp for the current log position under the
    /// signer's current key version.
    pub fn sign(signer: &dyn Signer, seq: u64, clock: u64) -> Self {
        let key_version = signer.key_version();
        Self {
            seq,
            clock,
            key_version,
            sig: signer.sign(&Self::message(seq, clock, key_version)),
        }
    }

    /// Check the stamp's signature.
    pub fn verify(&self, verifier: &dyn SigVerifier) -> bool {
        verifier.verify(
            &Self::message(self.seq, self.clock, self.key_version),
            &self.sig,
        )
    }
}

/// The freshness metadata an edge attaches to every response: its own
/// applied-delta position plus the newest owner stamp it holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResponseFreshness {
    /// Delta sequence number the serving edge had applied through when
    /// it produced the response. Advisory (the edge asserts it); the
    /// *signed* bound is the stamp.
    pub applied_seq: u64,
    /// Newest owner-signed `(seq, clock)` attestation the edge holds,
    /// if any.
    pub stamp: Option<FreshnessStamp>,
}

/// How much staleness a client tolerates from an edge replica, measured
/// against the owner position the client learned out of band (from the
/// trusted coordinator). Both bounds are inclusive; `u64::MAX` disables
/// a bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreshnessPolicy {
    /// Maximum accepted `owner_seq - stamp.seq` (deltas behind).
    pub max_lag: u64,
    /// Maximum accepted `owner_clock - stamp.clock` (clock ticks since
    /// the edge last proved contact with the owner).
    pub max_age: u64,
}

impl FreshnessPolicy {
    /// Reject anything but a fully caught-up, just-heard-from edge.
    pub fn strict() -> Self {
        Self {
            max_lag: 0,
            max_age: 0,
        }
    }

    /// Bound only the delta lag.
    pub fn max_lag(lag: u64) -> Self {
        Self {
            max_lag: lag,
            max_age: u64::MAX,
        }
    }

    /// Bound only the stamp age.
    pub fn max_age(age: u64) -> Self {
        Self {
            max_lag: u64::MAX,
            max_age: age,
        }
    }
}

impl Default for FreshnessPolicy {
    /// No staleness bound (the pre-cluster behaviour).
    fn default() -> Self {
        Self {
            max_lag: u64::MAX,
            max_age: u64::MAX,
        }
    }
}

/// Why a response failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Result rows are not strictly sorted by key.
    RowsUnsorted,
    /// A result key lies outside the queried range.
    RowOutOfRange {
        /// The offending key.
        key: u64,
    },
    /// A row does not have one value per returned column.
    WrongArity {
        /// The offending key.
        key: u64,
    },
    /// `D_P` does not contain exactly one digest per filtered attribute.
    ProjectionCountMismatch {
        /// Digests expected (`rows × filtered columns`).
        expected: usize,
        /// Digests present.
        actual: usize,
    },
    /// A signature in the VO failed to verify.
    BadSignature {
        /// Which part of the VO was bad ("top", "D_S", "D_P").
        part: &'static str,
    },
    /// A digest appears under the wrong role.
    WrongRole {
        /// Which part of the VO was bad.
        part: &'static str,
    },
    /// The reconstructed digest does not match the signed top digest —
    /// the result was tampered with.
    DigestMismatch,
    /// The projection in the query references an unknown column.
    BadProjection,
    /// A compact op stream is structurally invalid: stack
    /// underflow/overflow, unbalanced frames, a dictionary reference
    /// out of range, an op/row count mismatch, or an out-of-range
    /// digest exponent.
    MalformedVo {
        /// What was malformed.
        reason: &'static str,
    },
    /// The response is authentic but violates the client's
    /// [`FreshnessPolicy`] — an honest-but-stale edge, distinct from
    /// tampering. `None` fields mean the response carried no owner
    /// stamp at all.
    Stale {
        /// Signed deltas the edge's stamp lags behind the owner.
        lag: Option<u64>,
        /// Logical-clock ticks since the edge's stamp was signed.
        age: Option<u64>,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::RowsUnsorted => write!(f, "result rows not sorted by key"),
            VerifyError::RowOutOfRange { key } => write!(f, "result key {key} outside range"),
            VerifyError::WrongArity { key } => write!(f, "row {key} has wrong arity"),
            VerifyError::ProjectionCountMismatch { expected, actual } => {
                write!(f, "D_P has {actual} digests, expected {expected}")
            }
            VerifyError::BadSignature { part } => write!(f, "bad signature in {part}"),
            VerifyError::WrongRole { part } => write!(f, "wrong digest role in {part}"),
            VerifyError::DigestMismatch => write!(f, "digest mismatch: result tampered"),
            VerifyError::BadProjection => write!(f, "projection references unknown column"),
            VerifyError::MalformedVo { reason } => write!(f, "malformed compact VO: {reason}"),
            VerifyError::Stale {
                lag: None,
                age: None,
            } => write!(f, "stale: response carries no owner freshness stamp"),
            VerifyError::Stale { lag, age } => write!(
                f,
                "stale replica: {} deltas behind, stamp {} ticks old",
                lag.unwrap_or(0),
                age.unwrap_or(0)
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Successful verification report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Rows verified.
    pub rows: usize,
    /// Signatures checked (`Cost_s` events — the dominant client cost in
    /// the paper's model). With an aggregated compact VO this is 1 for
    /// the whole batch (plus 1 when a freshness stamp is enforced).
    pub signatures_checked: usize,
    /// Peak digest-frame stack depth of the compact stack-machine
    /// verifier — bounded by the enveloping subtree's height, the
    /// streaming verifier's O(depth) memory guarantee. 0 for the legacy
    /// flat-multiset path (it keeps no stack).
    pub peak_stack_depth: usize,
    /// Primitive-operation counts.
    pub meter: CostMeter,
}

/// The freshness check a [`ClientVerifier`] optionally enforces: the
/// policy plus the owner position `(seq, clock)` the client learned
/// from the trusted side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FreshnessCheck {
    policy: FreshnessPolicy,
    owner_seq: u64,
    owner_clock: u64,
}

/// Enforce a [`FreshnessPolicy`] against a response's freshness
/// metadata and the owner position `(owner_seq, owner_clock)` the
/// client learned out of band. Shared by [`ClientVerifier`] (the
/// VB-tree path) and the generic scheme pipeline
/// (`SchemeClient::verify_range_fresh` in `vbx-edge`), so every
/// `AuthScheme` whose responses carry a [`ResponseFreshness`] gets the
/// same staleness semantics.
///
/// Call this **only after** the response proved authentic, so staleness
/// is never conflated with tampering. `freshness: None` (a scheme whose
/// wire format carries no freshness metadata) reads as a missing stamp.
pub fn check_freshness(
    freshness: Option<&ResponseFreshness>,
    policy: &FreshnessPolicy,
    owner_seq: u64,
    owner_clock: u64,
    verifier: &dyn SigVerifier,
    meter: &mut CostMeter,
) -> Result<(), VerifyError> {
    let Some(stamp) = freshness.and_then(|f| f.stamp.as_ref()) else {
        return Err(VerifyError::Stale {
            lag: None,
            age: None,
        });
    };
    // A stamp from a different key generation (the edge kept serving
    // old-key data across a rotation, or vice versa) cannot prove
    // freshness for this response — that is staleness, not forgery.
    if stamp.key_version != verifier.key_version() {
        return Err(VerifyError::Stale {
            lag: None,
            age: None,
        });
    }
    meter.verify_ops += 1;
    if !stamp.verify(verifier) {
        return Err(VerifyError::BadSignature { part: "freshness" });
    }
    let lag = owner_seq.saturating_sub(stamp.seq);
    let age = owner_clock.saturating_sub(stamp.clock);
    if lag > policy.max_lag || age > policy.max_age {
        return Err(VerifyError::Stale {
            lag: Some(lag),
            age: Some(age),
        });
    }
    Ok(())
}

/// The client-side verifier: the public knowledge a client needs —
/// digest algebra parameters and the schema (names feed formula (1)).
pub struct ClientVerifier<'a, const L: usize> {
    /// Digest algebra (public group parameters).
    pub acc: &'a Accumulator<L>,
    /// Schema of the queried table.
    pub schema: &'a Schema,
    /// Optional staleness enforcement (see [`Self::with_freshness`]).
    freshness: Option<FreshnessCheck>,
}

impl<'a, const L: usize> ClientVerifier<'a, L> {
    /// Create a verifier context (no staleness bound).
    pub fn new(acc: &'a Accumulator<L>, schema: &'a Schema) -> Self {
        Self {
            acc,
            schema,
            freshness: None,
        }
    }

    /// Enforce `policy` against the owner position `(owner_seq,
    /// owner_clock)` the client trusts (obtained out of band from the
    /// coordinator). With this set, [`verify`](Self::verify) demands an
    /// owner-signed [`FreshnessStamp`] in the response and returns
    /// [`VerifyError::Stale`] when the replica lags beyond the policy —
    /// distinct from any tampering error.
    pub fn with_freshness(
        mut self,
        policy: FreshnessPolicy,
        owner_seq: u64,
        owner_clock: u64,
    ) -> Self {
        self.freshness = Some(FreshnessCheck {
            policy,
            owner_seq,
            owner_clock,
        });
        self
    }

    /// Verify a response against the query the client itself issued.
    ///
    /// `verifier` must be the public key obtained from the key registry
    /// for `resp.vo.key_version` — the caller decides whether that
    /// version is *currently* acceptable (see `vbx_crypto::keyreg`).
    pub fn verify(
        &self,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &QueryResponse<L>,
    ) -> Result<VerifyReport, VerifyError> {
        let mut meter = CostMeter::new();
        let num_cols = self.schema.num_columns();
        let returned = query.returned_columns(num_cols);
        if returned.iter().any(|&c| c >= num_cols) {
            return Err(VerifyError::BadProjection);
        }

        // --- structural checks on the rows ---
        let mut prev: Option<u64> = None;
        for row in &resp.rows {
            if row.key < query.lo || row.key > query.hi {
                return Err(VerifyError::RowOutOfRange { key: row.key });
            }
            if let Some(p) = prev {
                if row.key <= p {
                    return Err(VerifyError::RowsUnsorted);
                }
            }
            prev = Some(row.key);
            if row.values.len() != returned.len() {
                return Err(VerifyError::WrongArity { key: row.key });
            }
        }

        let filtered_cols = num_cols - returned.len();
        let expected_dp = resp.rows.len() * filtered_cols;
        if resp.vo.d_p.len() != expected_dp {
            return Err(VerifyError::ProjectionCountMismatch {
                expected: expected_dp,
                actual: resp.vo.d_p.len(),
            });
        }

        // --- recompute attribute digests from returned values ---
        let mut total = self.acc.identity();
        for row in &resp.rows {
            for (slot, &col) in returned.iter().enumerate() {
                let input = self
                    .schema
                    .attribute_digest_input(col, row.key, &row.values[slot]);
                let e = self.acc.exp_from_bytes(&input);
                meter.hash_ops += 1;
                total = self.acc.combine(&total, &e);
                meter.combine_ops += 1;
            }
        }

        // --- D_P: filtered attributes ---
        for d in &resp.vo.d_p {
            if d.role != DigestRole::Attribute {
                return Err(VerifyError::WrongRole { part: "D_P" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_P" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- D_S: filtered tuples and non-overlapping branches ---
        for d in &resp.vo.d_s {
            if d.role != DigestRole::Tuple && d.role != DigestRole::Node {
                return Err(VerifyError::WrongRole { part: "D_S" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_S" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- the signed top digest ---
        if resp.vo.top.role != DigestRole::Node {
            return Err(VerifyError::WrongRole { part: "top" });
        }
        meter.verify_ops += 1;
        if !self.acc.verify_digest(verifier, &resp.vo.top) {
            return Err(VerifyError::BadSignature { part: "top" });
        }

        // --- Lemma 1/2: compare in the value domain, h(x) = g^x mod p ---
        let lifted = self.acc.lift(&total);
        let expected = self.acc.lift(&resp.vo.top.exp);
        meter.lift_ops += 2;
        if lifted != expected {
            return Err(VerifyError::DigestMismatch);
        }

        // --- freshness: only after the response proved authentic, so
        // staleness is never conflated with tampering ---
        if let Some(check) = &self.freshness {
            check_freshness(
                Some(&resp.freshness),
                &check.policy,
                check.owner_seq,
                check.owner_clock,
                verifier,
                &mut meter,
            )?;
        }

        Ok(VerifyReport {
            rows: resp.rows.len(),
            signatures_checked: meter.verify_ops as usize,
            peak_stack_depth: 0,
            meter,
        })
    }

    // -----------------------------------------------------------------
    // Compact stack-machine verification
    // -----------------------------------------------------------------

    /// Verify a compact (op-stream) response against the batch of
    /// queries the client issued — one query per part, in order.
    ///
    /// Runs the stack machine over each part's op stream: `Begin`/`End`
    /// maintain O(depth) digest frames, every shipped digest is either
    /// individually signature-checked or absorbed into the single
    /// aggregate sweep, and each part's reconstructed product must
    /// lift-match its signed top digest.
    pub fn verify_compact(
        &self,
        verifier: &dyn SigVerifier,
        queries: &[RangeQuery],
        resp: &CompactResponse<L>,
    ) -> Result<VerifyReport, VerifyError> {
        let mut meter = CostMeter::new();
        if resp.parts.len() != queries.len() {
            return Err(VerifyError::MalformedVo {
                reason: "part count does not match query count",
            });
        }
        let mut sweep = AggSweep::begin(verifier, resp.agg_sig.as_ref())?;
        for d in &resp.dict {
            check_vo_digest(self.acc, verifier, d, "dict", &mut sweep, &mut meter)?;
        }
        let mut peak = 0usize;
        let mut total_rows = 0usize;
        for (part, query) in resp.parts.iter().zip(queries) {
            let mut machine =
                PartMachine::start(self, verifier, query, &part.top, &mut sweep, &mut meter)?;
            let mut next_row = 0usize;
            for op in &part.ops {
                let ev = match op {
                    VoOp::Begin => OpEvent::Begin,
                    VoOp::End => OpEvent::End,
                    VoOp::Push(d) => OpEvent::Push(d),
                    VoOp::Ref(i) => OpEvent::Ref(*i),
                    VoOp::Row => {
                        let Some(row) = part.rows.get(next_row) else {
                            return Err(VerifyError::MalformedVo {
                                reason: "more Row ops than rows",
                            });
                        };
                        next_row += 1;
                        OpEvent::Row(row)
                    }
                };
                machine.step(ev, verifier, &resp.dict, &mut sweep, &mut meter)?;
            }
            if next_row != part.rows.len() {
                return Err(VerifyError::MalformedVo {
                    reason: "fewer Row ops than rows",
                });
            }
            peak = peak.max(machine.close(&part.top, &mut meter)?);
            total_rows += part.rows.len();
        }
        sweep.finish(&mut meter)?;

        if let Some(check) = &self.freshness {
            check_freshness(
                Some(&resp.freshness),
                &check.policy,
                check.owner_seq,
                check.owner_clock,
                verifier,
                &mut meter,
            )?;
        }

        Ok(VerifyReport {
            rows: total_rows,
            signatures_checked: meter.verify_ops as usize,
            peak_stack_depth: peak,
            meter,
        })
    }

    /// Streaming verification of an encoded `VBX4` buffer: consumes the
    /// op stream directly off the wire with O(depth) digest frames and
    /// only the dictionary buffered — the whole VO is never
    /// materialised. Each verified row is handed to `on_row` with its
    /// part index as it is decoded.
    pub fn verify_compact_stream(
        &self,
        verifier: &dyn SigVerifier,
        queries: &[RangeQuery],
        bytes: &[u8],
        on_row: &mut dyn FnMut(usize, ResultRow),
    ) -> Result<VerifyReport, VerifyError> {
        let malformed = |reason: &'static str| VerifyError::MalformedVo { reason };
        let mut meter = CostMeter::new();
        let mut stream = crate::wire::CompactStream::<L>::open(bytes, self.acc)
            .map_err(|_| malformed("undecodable VBX4 buffer"))?;
        if stream.part_count() as usize != queries.len() {
            return Err(malformed("part count does not match query count"));
        }
        let mut sweep = AggSweep::begin(verifier, stream.agg_sig())?;
        for d in stream.dict() {
            check_vo_digest(self.acc, verifier, d, "dict", &mut sweep, &mut meter)?;
        }
        // The dictionary is the machine's only buffered digests; clone
        // it out so the stream can keep advancing.
        let dict: Vec<_> = stream.dict().to_vec();
        let mut peak = 0usize;
        let mut total_rows = 0usize;
        for (pi, query) in queries.iter().enumerate() {
            let part = stream
                .begin_part()
                .map_err(|_| malformed("undecodable part header"))?;
            let mut machine =
                PartMachine::start(self, verifier, query, &part.top, &mut sweep, &mut meter)?;
            let mut rows_seen = 0u32;
            for _ in 0..part.op_count {
                let op = stream
                    .next_op()
                    .map_err(|_| malformed("undecodable op stream"))?;
                match op {
                    crate::wire::StreamOp::Begin => {
                        machine.step(OpEvent::Begin, verifier, &dict, &mut sweep, &mut meter)?
                    }
                    crate::wire::StreamOp::End => {
                        machine.step(OpEvent::End, verifier, &dict, &mut sweep, &mut meter)?
                    }
                    crate::wire::StreamOp::Push(d) => {
                        machine.step(OpEvent::Push(&d), verifier, &dict, &mut sweep, &mut meter)?
                    }
                    crate::wire::StreamOp::Ref(i) => {
                        machine.step(OpEvent::Ref(i), verifier, &dict, &mut sweep, &mut meter)?
                    }
                    crate::wire::StreamOp::Row(row) => {
                        rows_seen += 1;
                        machine.step(
                            OpEvent::Row(&row),
                            verifier,
                            &dict,
                            &mut sweep,
                            &mut meter,
                        )?;
                        on_row(pi, row);
                    }
                }
            }
            if rows_seen != part.row_count {
                return Err(malformed("row count does not match Row ops"));
            }
            peak = peak.max(machine.close(&part.top, &mut meter)?);
            total_rows += rows_seen as usize;
        }
        sweep.finish(&mut meter)?;
        let freshness = stream
            .finish()
            .map_err(|_| malformed("undecodable freshness tail"))?;

        if let Some(check) = &self.freshness {
            check_freshness(
                Some(&freshness),
                &check.policy,
                check.owner_seq,
                check.owner_clock,
                verifier,
                &mut meter,
            )?;
        }

        Ok(VerifyReport {
            rows: total_rows,
            signatures_checked: meter.verify_ops as usize,
            peak_stack_depth: peak,
            meter,
        })
    }
}

/// Hard cap on the op-stream frame stack: far above any realistic tree
/// height, so a hostile `Begin`-flood errors out instead of growing
/// memory.
pub const MAX_VO_STACK: usize = 64;

/// One event of the compact stack machine, borrowed from either the
/// materialised structs or the wire stream.
enum OpEvent<'x, const L: usize> {
    Begin,
    End,
    Push(&'x SignedDigest<L>),
    Row(&'x ResultRow),
    Ref(u32),
}

/// The single amortised signature sweep over a compact response's bare
/// digests. Present exactly when the response carries an aggregate
/// signature; absorbing a bare digest without one (or without a
/// verifier that can aggregate) is a verification failure, never a
/// silent skip.
struct AggSweep {
    state: Option<Box<dyn AggregateVerify>>,
    agg: Option<Signature>,
}

impl AggSweep {
    fn begin(verifier: &dyn SigVerifier, agg: Option<&Signature>) -> Result<Self, VerifyError> {
        match agg {
            Some(sig) => {
                let Some(state) = verifier.begin_aggregate() else {
                    return Err(VerifyError::BadSignature { part: "aggregate" });
                };
                Ok(Self {
                    state: Some(state),
                    agg: Some(sig.clone()),
                })
            }
            None => Ok(Self {
                state: None,
                agg: None,
            }),
        }
    }

    fn absorb(&mut self, msg: &[u8]) -> Result<(), VerifyError> {
        match &mut self.state {
            Some(st) => {
                st.absorb(msg);
                Ok(())
            }
            // A bare digest in a response with no aggregate signature
            // has no authentication at all.
            None => Err(VerifyError::BadSignature { part: "aggregate" }),
        }
    }

    fn finish(self, meter: &mut CostMeter) -> Result<(), VerifyError> {
        match (self.state, self.agg) {
            (Some(st), Some(agg)) => {
                meter.verify_ops += 1;
                if st.finish(&agg) {
                    Ok(())
                } else {
                    Err(VerifyError::BadSignature { part: "aggregate" })
                }
            }
            _ => Ok(()),
        }
    }
}

/// Authenticate one shipped digest: range-check the exponent, then
/// either verify its individual signature or absorb its signed payload
/// into the aggregate sweep.
fn check_vo_digest<const L: usize>(
    acc: &Accumulator<L>,
    verifier: &dyn SigVerifier,
    d: &SignedDigest<L>,
    part: &'static str,
    sweep: &mut AggSweep,
    meter: &mut CostMeter,
) -> Result<(), VerifyError> {
    if d.role == DigestRole::Root {
        return Err(VerifyError::WrongRole { part });
    }
    let exp_bytes = acc.exp_to_bytes(&d.exp);
    if acc.exp_from_canonical(&exp_bytes).is_none() {
        return Err(VerifyError::MalformedVo {
            reason: "digest exponent out of range",
        });
    }
    if d.sig.is_empty() {
        meter.hash_ops += 1;
        sweep.absorb(&signed_payload(d.role, &exp_bytes))
    } else {
        meter.verify_ops += 1;
        if acc.verify_digest(verifier, d) {
            Ok(())
        } else {
            Err(VerifyError::BadSignature { part })
        }
    }
}

/// Per-part stack machine: digest frames, row ordering, and the final
/// lift comparison against the part's signed top digest.
struct PartMachine<'a, 'q, const L: usize> {
    acc: &'a Accumulator<L>,
    schema: &'a Schema,
    stack: Vec<Uint<L>>,
    peak: usize,
    prev_key: Option<u64>,
    returned: Vec<usize>,
    query: &'q RangeQuery,
    /// Columns the projection filtered away, whose attribute digests
    /// must arrive via the op stream.
    filtered_cols: usize,
    /// Rows consumed so far.
    rows_seen: usize,
    /// Attribute-role digests folded so far (pushes and dictionary
    /// references alike).
    attr_folds: usize,
}

impl<'a, 'q, const L: usize> PartMachine<'a, 'q, L> {
    /// Authenticate the part's top digest (it opens the part's slice of
    /// the aggregate absorb order) and set up the frame stack.
    fn start(
        cv: &ClientVerifier<'a, L>,
        verifier: &dyn SigVerifier,
        query: &'q RangeQuery,
        top: &SignedDigest<L>,
        sweep: &mut AggSweep,
        meter: &mut CostMeter,
    ) -> Result<Self, VerifyError> {
        let num_cols = cv.schema.num_columns();
        let returned = query.returned_columns(num_cols);
        if returned.iter().any(|&c| c >= num_cols) {
            return Err(VerifyError::BadProjection);
        }
        if top.role != DigestRole::Node {
            return Err(VerifyError::WrongRole { part: "top" });
        }
        check_vo_digest(cv.acc, verifier, top, "top", sweep, meter)?;
        let filtered_cols = num_cols - returned.len();
        Ok(Self {
            acc: cv.acc,
            schema: cv.schema,
            stack: vec![cv.acc.identity()],
            peak: 1,
            prev_key: None,
            returned,
            query,
            filtered_cols,
            rows_seen: 0,
            attr_folds: 0,
        })
    }

    fn fold(&mut self, exp: &Uint<L>, meter: &mut CostMeter) {
        let top = self.stack.last_mut().expect("stack never empties");
        *top = self.acc.combine(top, exp);
        meter.combine_ops += 1;
    }

    fn step(
        &mut self,
        ev: OpEvent<'_, L>,
        verifier: &dyn SigVerifier,
        dict: &[SignedDigest<L>],
        sweep: &mut AggSweep,
        meter: &mut CostMeter,
    ) -> Result<(), VerifyError> {
        match ev {
            OpEvent::Begin => {
                if self.stack.len() >= MAX_VO_STACK {
                    return Err(VerifyError::MalformedVo {
                        reason: "frame stack overflow",
                    });
                }
                self.stack.push(self.acc.identity());
                self.peak = self.peak.max(self.stack.len());
            }
            OpEvent::End => {
                if self.stack.len() == 1 {
                    return Err(VerifyError::MalformedVo {
                        reason: "frame stack underflow",
                    });
                }
                let closed = self.stack.pop().expect("len > 1");
                self.fold(&closed, meter);
            }
            OpEvent::Push(d) => {
                check_vo_digest(self.acc, verifier, d, "ops", sweep, meter)?;
                if d.role == DigestRole::Attribute {
                    self.attr_folds += 1;
                }
                self.fold(&d.exp, meter);
            }
            OpEvent::Ref(i) => {
                let Some(d) = dict.get(i as usize) else {
                    return Err(VerifyError::MalformedVo {
                        reason: "dictionary reference out of range",
                    });
                };
                // Dictionary entries were authenticated once up front;
                // a reference only folds the exponent in.
                if d.role == DigestRole::Attribute {
                    self.attr_folds += 1;
                }
                self.fold(&d.exp, meter);
            }
            OpEvent::Row(row) => {
                self.rows_seen += 1;
                if row.key < self.query.lo || row.key > self.query.hi {
                    return Err(VerifyError::RowOutOfRange { key: row.key });
                }
                if self.prev_key.is_some_and(|p| row.key <= p) {
                    return Err(VerifyError::RowsUnsorted);
                }
                self.prev_key = Some(row.key);
                if row.values.len() != self.returned.len() {
                    return Err(VerifyError::WrongArity { key: row.key });
                }
                for slot in 0..self.returned.len() {
                    let col = self.returned[slot];
                    let input = self
                        .schema
                        .attribute_digest_input(col, row.key, &row.values[slot]);
                    let e = self.acc.exp_from_bytes(&input);
                    meter.hash_ops += 1;
                    self.fold(&e, meter);
                }
            }
        }
        Ok(())
    }

    /// Check frame balance and compare the reconstructed product with
    /// the signed top digest. Returns the peak stack depth.
    fn close(mut self, top: &SignedDigest<L>, meter: &mut CostMeter) -> Result<usize, VerifyError> {
        if self.stack.len() != 1 {
            return Err(VerifyError::MalformedVo {
                reason: "unbalanced op stream",
            });
        }
        // The compact analogue of the flat D_P count check: every row
        // owes exactly one attribute digest per filtered column, which
        // also pins the row count when rows carry no returned values.
        let expected_attrs = self.rows_seen * self.filtered_cols;
        if self.attr_folds != expected_attrs {
            return Err(VerifyError::ProjectionCountMismatch {
                expected: expected_attrs,
                actual: self.attr_folds,
            });
        }
        let total = self.stack.pop().expect("exactly one frame");
        let lifted = self.acc.lift(&total);
        let expected = self.acc.lift(&top.exp);
        meter.lift_ops += 2;
        if lifted != expected {
            return Err(VerifyError::DigestMismatch);
        }
        Ok(self.peak)
    }
}
