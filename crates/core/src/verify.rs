//! Client-side verification — Lemmas 1 and 2 of the paper.
//!
//! The client recomputes the attribute digests of the values it received
//! (formula (1)), multiplies in every signed digest from `D_P` (filtered
//! attributes) and `D_S` (filtered tuples / non-overlapping branches) in
//! arbitrary order, lifts the total exponent through `h(x) = g^x mod p`,
//! and compares with the signed digest of the enveloping subtree's top
//! node. Any tampering with values, any spurious tuple, or any dropped
//! digest breaks the equation.

use crate::meter::CostMeter;
use crate::vo::{QueryResponse, RangeQuery};
use vbx_crypto::accum::{Accumulator, DigestRole};
use vbx_crypto::{SigVerifier, Signature, Signer};
use vbx_storage::Schema;

/// Domain-separation tag for freshness-stamp signatures, so a stamp can
/// never be confused with a digest signature (or vice versa).
const STAMP_DOMAIN: &[u8; 8] = b"VBXFRSH1";

/// An owner-signed attestation of the log position: "at logical clock
/// `clock`, the latest committed delta sequence number was `seq`".
///
/// This is the signed part of the root bundle an edge republishes with
/// its responses. Edges cannot forge a *newer* stamp (they hold no
/// signing key), so a client that knows the owner's current position can
/// bound how stale an **honest-but-lagging** replica is — the lazy-trust
/// gap WedgeChain formalises for edge-cloud stores. The owner refreshes
/// the stamp on every commit and on explicit heartbeats, so `clock` also
/// proves recent contact when no updates flow.
///
/// **Threat-model boundary:** the stamp attests the owner's position,
/// not the snapshot the edge actually served from. A *malicious* edge
/// that keeps receiving stamps can pair its newest stamp with an older
/// (still authentically signed) snapshot; integrity is still guaranteed
/// by the VO, and bounded staleness against such an edge falls back to
/// the paper's key-rotation validity windows (`KeyFreshnessPolicy`).
/// Binding the served root digest into the stamp is a roadmap item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreshnessStamp {
    /// Number of committed deltas the stamp attests to (the owner's
    /// next expected sequence number).
    pub seq: u64,
    /// Owner's logical clock at signing time.
    pub clock: u64,
    /// Key version the stamp was signed under (signed into the
    /// message, so it cannot be rewritten). After a key rotation an
    /// edge still serving old-key VOs has no stamp verifiable under
    /// that key — reported as `Stale`, not as tampering.
    pub key_version: u32,
    /// Signature over the domain-tagged `(seq, clock, key_version)`
    /// message.
    pub sig: Signature,
}

impl FreshnessStamp {
    /// The exact bytes the owner signs.
    pub fn message(seq: u64, clock: u64, key_version: u32) -> [u8; 28] {
        let mut msg = [0u8; 28];
        msg[..8].copy_from_slice(STAMP_DOMAIN);
        msg[8..16].copy_from_slice(&seq.to_be_bytes());
        msg[16..24].copy_from_slice(&clock.to_be_bytes());
        msg[24..28].copy_from_slice(&key_version.to_be_bytes());
        msg
    }

    /// Trusted: sign a stamp for the current log position under the
    /// signer's current key version.
    pub fn sign(signer: &dyn Signer, seq: u64, clock: u64) -> Self {
        let key_version = signer.key_version();
        Self {
            seq,
            clock,
            key_version,
            sig: signer.sign(&Self::message(seq, clock, key_version)),
        }
    }

    /// Check the stamp's signature.
    pub fn verify(&self, verifier: &dyn SigVerifier) -> bool {
        verifier.verify(
            &Self::message(self.seq, self.clock, self.key_version),
            &self.sig,
        )
    }
}

/// The freshness metadata an edge attaches to every response: its own
/// applied-delta position plus the newest owner stamp it holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResponseFreshness {
    /// Delta sequence number the serving edge had applied through when
    /// it produced the response. Advisory (the edge asserts it); the
    /// *signed* bound is the stamp.
    pub applied_seq: u64,
    /// Newest owner-signed `(seq, clock)` attestation the edge holds,
    /// if any.
    pub stamp: Option<FreshnessStamp>,
}

/// How much staleness a client tolerates from an edge replica, measured
/// against the owner position the client learned out of band (from the
/// trusted coordinator). Both bounds are inclusive; `u64::MAX` disables
/// a bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreshnessPolicy {
    /// Maximum accepted `owner_seq - stamp.seq` (deltas behind).
    pub max_lag: u64,
    /// Maximum accepted `owner_clock - stamp.clock` (clock ticks since
    /// the edge last proved contact with the owner).
    pub max_age: u64,
}

impl FreshnessPolicy {
    /// Reject anything but a fully caught-up, just-heard-from edge.
    pub fn strict() -> Self {
        Self {
            max_lag: 0,
            max_age: 0,
        }
    }

    /// Bound only the delta lag.
    pub fn max_lag(lag: u64) -> Self {
        Self {
            max_lag: lag,
            max_age: u64::MAX,
        }
    }

    /// Bound only the stamp age.
    pub fn max_age(age: u64) -> Self {
        Self {
            max_lag: u64::MAX,
            max_age: age,
        }
    }
}

impl Default for FreshnessPolicy {
    /// No staleness bound (the pre-cluster behaviour).
    fn default() -> Self {
        Self {
            max_lag: u64::MAX,
            max_age: u64::MAX,
        }
    }
}

/// Why a response failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Result rows are not strictly sorted by key.
    RowsUnsorted,
    /// A result key lies outside the queried range.
    RowOutOfRange {
        /// The offending key.
        key: u64,
    },
    /// A row does not have one value per returned column.
    WrongArity {
        /// The offending key.
        key: u64,
    },
    /// `D_P` does not contain exactly one digest per filtered attribute.
    ProjectionCountMismatch {
        /// Digests expected (`rows × filtered columns`).
        expected: usize,
        /// Digests present.
        actual: usize,
    },
    /// A signature in the VO failed to verify.
    BadSignature {
        /// Which part of the VO was bad ("top", "D_S", "D_P").
        part: &'static str,
    },
    /// A digest appears under the wrong role.
    WrongRole {
        /// Which part of the VO was bad.
        part: &'static str,
    },
    /// The reconstructed digest does not match the signed top digest —
    /// the result was tampered with.
    DigestMismatch,
    /// The projection in the query references an unknown column.
    BadProjection,
    /// The response is authentic but violates the client's
    /// [`FreshnessPolicy`] — an honest-but-stale edge, distinct from
    /// tampering. `None` fields mean the response carried no owner
    /// stamp at all.
    Stale {
        /// Signed deltas the edge's stamp lags behind the owner.
        lag: Option<u64>,
        /// Logical-clock ticks since the edge's stamp was signed.
        age: Option<u64>,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::RowsUnsorted => write!(f, "result rows not sorted by key"),
            VerifyError::RowOutOfRange { key } => write!(f, "result key {key} outside range"),
            VerifyError::WrongArity { key } => write!(f, "row {key} has wrong arity"),
            VerifyError::ProjectionCountMismatch { expected, actual } => {
                write!(f, "D_P has {actual} digests, expected {expected}")
            }
            VerifyError::BadSignature { part } => write!(f, "bad signature in {part}"),
            VerifyError::WrongRole { part } => write!(f, "wrong digest role in {part}"),
            VerifyError::DigestMismatch => write!(f, "digest mismatch: result tampered"),
            VerifyError::BadProjection => write!(f, "projection references unknown column"),
            VerifyError::Stale {
                lag: None,
                age: None,
            } => write!(f, "stale: response carries no owner freshness stamp"),
            VerifyError::Stale { lag, age } => write!(
                f,
                "stale replica: {} deltas behind, stamp {} ticks old",
                lag.unwrap_or(0),
                age.unwrap_or(0)
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Successful verification report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Rows verified.
    pub rows: usize,
    /// Signatures checked (`Cost_s` events — the dominant client cost in
    /// the paper's model).
    pub signatures_checked: usize,
    /// Primitive-operation counts.
    pub meter: CostMeter,
}

/// The freshness check a [`ClientVerifier`] optionally enforces: the
/// policy plus the owner position `(seq, clock)` the client learned
/// from the trusted side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct FreshnessCheck {
    policy: FreshnessPolicy,
    owner_seq: u64,
    owner_clock: u64,
}

/// Enforce a [`FreshnessPolicy`] against a response's freshness
/// metadata and the owner position `(owner_seq, owner_clock)` the
/// client learned out of band. Shared by [`ClientVerifier`] (the
/// VB-tree path) and the generic scheme pipeline
/// (`SchemeClient::verify_range_fresh` in `vbx-edge`), so every
/// `AuthScheme` whose responses carry a [`ResponseFreshness`] gets the
/// same staleness semantics.
///
/// Call this **only after** the response proved authentic, so staleness
/// is never conflated with tampering. `freshness: None` (a scheme whose
/// wire format carries no freshness metadata) reads as a missing stamp.
pub fn check_freshness(
    freshness: Option<&ResponseFreshness>,
    policy: &FreshnessPolicy,
    owner_seq: u64,
    owner_clock: u64,
    verifier: &dyn SigVerifier,
    meter: &mut CostMeter,
) -> Result<(), VerifyError> {
    let Some(stamp) = freshness.and_then(|f| f.stamp.as_ref()) else {
        return Err(VerifyError::Stale {
            lag: None,
            age: None,
        });
    };
    // A stamp from a different key generation (the edge kept serving
    // old-key data across a rotation, or vice versa) cannot prove
    // freshness for this response — that is staleness, not forgery.
    if stamp.key_version != verifier.key_version() {
        return Err(VerifyError::Stale {
            lag: None,
            age: None,
        });
    }
    meter.verify_ops += 1;
    if !stamp.verify(verifier) {
        return Err(VerifyError::BadSignature { part: "freshness" });
    }
    let lag = owner_seq.saturating_sub(stamp.seq);
    let age = owner_clock.saturating_sub(stamp.clock);
    if lag > policy.max_lag || age > policy.max_age {
        return Err(VerifyError::Stale {
            lag: Some(lag),
            age: Some(age),
        });
    }
    Ok(())
}

/// The client-side verifier: the public knowledge a client needs —
/// digest algebra parameters and the schema (names feed formula (1)).
pub struct ClientVerifier<'a, const L: usize> {
    /// Digest algebra (public group parameters).
    pub acc: &'a Accumulator<L>,
    /// Schema of the queried table.
    pub schema: &'a Schema,
    /// Optional staleness enforcement (see [`Self::with_freshness`]).
    freshness: Option<FreshnessCheck>,
}

impl<'a, const L: usize> ClientVerifier<'a, L> {
    /// Create a verifier context (no staleness bound).
    pub fn new(acc: &'a Accumulator<L>, schema: &'a Schema) -> Self {
        Self {
            acc,
            schema,
            freshness: None,
        }
    }

    /// Enforce `policy` against the owner position `(owner_seq,
    /// owner_clock)` the client trusts (obtained out of band from the
    /// coordinator). With this set, [`verify`](Self::verify) demands an
    /// owner-signed [`FreshnessStamp`] in the response and returns
    /// [`VerifyError::Stale`] when the replica lags beyond the policy —
    /// distinct from any tampering error.
    pub fn with_freshness(
        mut self,
        policy: FreshnessPolicy,
        owner_seq: u64,
        owner_clock: u64,
    ) -> Self {
        self.freshness = Some(FreshnessCheck {
            policy,
            owner_seq,
            owner_clock,
        });
        self
    }

    /// Verify a response against the query the client itself issued.
    ///
    /// `verifier` must be the public key obtained from the key registry
    /// for `resp.vo.key_version` — the caller decides whether that
    /// version is *currently* acceptable (see `vbx_crypto::keyreg`).
    pub fn verify(
        &self,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &QueryResponse<L>,
    ) -> Result<VerifyReport, VerifyError> {
        let mut meter = CostMeter::new();
        let num_cols = self.schema.num_columns();
        let returned = query.returned_columns(num_cols);
        if returned.iter().any(|&c| c >= num_cols) {
            return Err(VerifyError::BadProjection);
        }

        // --- structural checks on the rows ---
        let mut prev: Option<u64> = None;
        for row in &resp.rows {
            if row.key < query.lo || row.key > query.hi {
                return Err(VerifyError::RowOutOfRange { key: row.key });
            }
            if let Some(p) = prev {
                if row.key <= p {
                    return Err(VerifyError::RowsUnsorted);
                }
            }
            prev = Some(row.key);
            if row.values.len() != returned.len() {
                return Err(VerifyError::WrongArity { key: row.key });
            }
        }

        let filtered_cols = num_cols - returned.len();
        let expected_dp = resp.rows.len() * filtered_cols;
        if resp.vo.d_p.len() != expected_dp {
            return Err(VerifyError::ProjectionCountMismatch {
                expected: expected_dp,
                actual: resp.vo.d_p.len(),
            });
        }

        // --- recompute attribute digests from returned values ---
        let mut total = self.acc.identity();
        for row in &resp.rows {
            for (slot, &col) in returned.iter().enumerate() {
                let input = self
                    .schema
                    .attribute_digest_input(col, row.key, &row.values[slot]);
                let e = self.acc.exp_from_bytes(&input);
                meter.hash_ops += 1;
                total = self.acc.combine(&total, &e);
                meter.combine_ops += 1;
            }
        }

        // --- D_P: filtered attributes ---
        for d in &resp.vo.d_p {
            if d.role != DigestRole::Attribute {
                return Err(VerifyError::WrongRole { part: "D_P" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_P" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- D_S: filtered tuples and non-overlapping branches ---
        for d in &resp.vo.d_s {
            if d.role != DigestRole::Tuple && d.role != DigestRole::Node {
                return Err(VerifyError::WrongRole { part: "D_S" });
            }
            meter.verify_ops += 1;
            if !self.acc.verify_digest(verifier, d) {
                return Err(VerifyError::BadSignature { part: "D_S" });
            }
            total = self.acc.combine(&total, &d.exp);
            meter.combine_ops += 1;
        }

        // --- the signed top digest ---
        if resp.vo.top.role != DigestRole::Node {
            return Err(VerifyError::WrongRole { part: "top" });
        }
        meter.verify_ops += 1;
        if !self.acc.verify_digest(verifier, &resp.vo.top) {
            return Err(VerifyError::BadSignature { part: "top" });
        }

        // --- Lemma 1/2: compare in the value domain, h(x) = g^x mod p ---
        let lifted = self.acc.lift(&total);
        let expected = self.acc.lift(&resp.vo.top.exp);
        meter.lift_ops += 2;
        if lifted != expected {
            return Err(VerifyError::DigestMismatch);
        }

        // --- freshness: only after the response proved authentic, so
        // staleness is never conflated with tampering ---
        if let Some(check) = &self.freshness {
            check_freshness(
                Some(&resp.freshness),
                &check.policy,
                check.owner_seq,
                check.owner_clock,
                verifier,
                &mut meter,
            )?;
        }

        Ok(VerifyReport {
            rows: resp.rows.len(),
            signatures_checked: meter.verify_ops as usize,
            meter,
        })
    }
}
