//! Full-tree serialization — the bytes the central server actually ships
//! when distributing "the database and VB-trees … to servers situated at
//! the edge of the network" (Section 3.1, Figure 2).
//!
//! The encoding walks the tree in preorder, so arena ids are rebuilt on
//! decode; after decoding, [`crate::VbTree::check_integrity`] can (and
//! in [`decode_tree`] *does*, structurally) validate the replica before
//! it serves queries.

use crate::node::{InternalNode, LeafNode, Node, NodeId, TupleEntry};
use crate::tree::{VbTree, VbTreeConfig};
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::Signature;
use vbx_storage::{Geometry, Schema, Tuple};

const MAGIC: &[u8; 4] = b"VBT1";

pub(crate) fn put_digest<const L: usize>(out: &mut Vec<u8>, d: &SignedDigest<L>) {
    out.push(d.role.to_tag());
    out.extend_from_slice(&d.exp.to_be_bytes());
    out.put_u16(d.sig.len() as u16);
    out.extend_from_slice(d.sig.as_bytes());
}

pub(crate) fn get_digest<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
    expect_role: Option<DigestRole>,
) -> Result<SignedDigest<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 + L * 8 + 2 {
        return Err(corrupt("digest truncated"));
    }
    let role = DigestRole::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad digest role"))?;
    if let Some(expected) = expect_role {
        if role != expected {
            return Err(corrupt("unexpected digest role"));
        }
    }
    let exp = acc
        .exp_from_canonical(&buf[..L * 8])
        .ok_or_else(|| corrupt("digest exponent out of range"))?;
    buf.advance(L * 8);
    let sig_len = buf.get_u16() as usize;
    if buf.remaining() < sig_len {
        return Err(corrupt("digest signature truncated"));
    }
    let sig = Signature(buf[..sig_len].to_vec());
    buf.advance(sig_len);
    Ok(SignedDigest { exp, role, sig })
}

/// Serialize a tree to bytes.
pub fn encode_tree<const L: usize>(tree: &VbTree<L>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    out.put_u64(tree.len());
    out.put_u32(tree.height());
    out.put_u64(tree.version());
    out.put_u32(tree.key_version());

    let g = tree.config().geometry;
    out.put_u32(g.block_size as u32);
    out.put_u32(g.key_len as u32);
    out.put_u32(g.ptr_len as u32);
    out.put_u32(g.digest_len as u32);
    match tree.config().fanout_override {
        Some(f) => {
            out.push(1);
            out.put_u32(f as u32);
        }
        None => out.push(0),
    }

    tree.schema().encode_into(&mut out);
    encode_node(tree, tree.root_id(), &mut out);
    out
}

fn encode_node<const L: usize>(tree: &VbTree<L>, id: NodeId, out: &mut Vec<u8>) {
    match tree.node(id) {
        Node::Leaf(n) => {
            out.push(0); // leaf tag
            put_digest(out, &n.digest);
            out.put_u32(n.entries.len() as u32);
            for e in &n.entries {
                e.tuple.encode_into(out);
                for d in &e.attr_digests {
                    put_digest(out, d);
                }
                put_digest(out, &e.tuple_digest);
            }
        }
        Node::Internal(n) => {
            out.push(1); // internal tag
            put_digest(out, &n.digest);
            out.put_u32(n.children.len() as u32);
            for &k in &n.keys {
                out.put_u64(k);
            }
            for &c in &n.children {
                encode_node(tree, c, out);
            }
        }
    }
}

/// Decode a tree. Performs structural validation (key order, digest
/// consistency) via [`VbTree::check_integrity`] before returning;
/// signature validation is the caller's choice (pass a verifier to
/// `check_integrity` for a full audit).
pub fn decode_tree<const L: usize>(
    bytes: &[u8],
    acc: Accumulator<L>,
) -> Result<VbTree<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(corrupt("bad tree magic"));
    }
    buf.advance(4);
    if buf.remaining() < 8 + 4 + 8 + 4 + 16 + 1 {
        return Err(corrupt("tree header truncated"));
    }
    let len = buf.get_u64();
    let height = buf.get_u32();
    let version = buf.get_u64();
    let key_version = buf.get_u32();
    let geometry = Geometry {
        block_size: buf.get_u32() as usize,
        key_len: buf.get_u32() as usize,
        ptr_len: buf.get_u32() as usize,
        digest_len: buf.get_u32() as usize,
    };
    let fanout_override = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 4 {
                return Err(corrupt("fanout truncated"));
            }
            Some(buf.get_u32() as usize)
        }
        _ => return Err(corrupt("bad fanout tag")),
    };
    let schema = Schema::decode(&mut buf).map_err(CoreError::Storage)?;
    let n_cols = schema.num_columns();

    let mut nodes: Vec<Option<std::sync::Arc<Node<L>>>> = Vec::new();
    let root = decode_node(&mut buf, &acc, n_cols, &mut nodes)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after tree"));
    }

    let tree = VbTree {
        schema,
        config: VbTreeConfig {
            geometry,
            fanout_override,
        },
        acc,
        nodes,
        free: Vec::new(),
        root,
        height,
        len,
        version,
        key_version,
        meter: crate::CostMeter::new(),
        dirty: None,
    };
    // Structural audit: digests, ordering, separators, counts. (A bad
    // replica must never be served from.)
    tree.check_integrity(None)?;
    Ok(tree)
}

fn decode_node<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
    n_cols: usize,
    nodes: &mut Vec<Option<std::sync::Arc<Node<L>>>>,
) -> Result<NodeId, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if !buf.has_remaining() {
        return Err(corrupt("node truncated"));
    }
    let tag = buf.get_u8();
    match tag {
        0 => {
            let digest = get_digest(buf, acc, Some(DigestRole::Node))?;
            if buf.remaining() < 4 {
                return Err(corrupt("leaf entry count truncated"));
            }
            let n = buf.get_u32() as usize;
            let mut entries = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let tuple = Tuple::decode(buf).map_err(CoreError::Storage)?;
                if tuple.values.len() != n_cols {
                    return Err(corrupt("tuple arity does not match schema"));
                }
                let mut attr_digests = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    attr_digests.push(get_digest(buf, acc, Some(DigestRole::Attribute))?);
                }
                let tuple_digest = get_digest(buf, acc, Some(DigestRole::Tuple))?;
                entries.push(TupleEntry {
                    tuple,
                    attr_digests,
                    tuple_digest,
                });
            }
            nodes.push(Some(std::sync::Arc::new(Node::Leaf(LeafNode {
                entries,
                digest,
            }))));
            Ok(nodes.len() - 1)
        }
        1 => {
            let digest = get_digest(buf, acc, Some(DigestRole::Node))?;
            if buf.remaining() < 4 {
                return Err(corrupt("internal child count truncated"));
            }
            let n_children = buf.get_u32() as usize;
            if n_children == 0 || n_children > 1 << 20 {
                return Err(corrupt("implausible child count"));
            }
            let mut keys = Vec::with_capacity(n_children - 1);
            for _ in 0..n_children - 1 {
                if buf.remaining() < 8 {
                    return Err(corrupt("separator truncated"));
                }
                keys.push(buf.get_u64());
            }
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(decode_node(buf, acc, n_cols, nodes)?);
            }
            nodes.push(Some(std::sync::Arc::new(Node::Internal(InternalNode {
                keys,
                children,
                digest,
            }))));
            Ok(nodes.len() - 1)
        }
        _ => Err(corrupt("bad node tag")),
    }
}
