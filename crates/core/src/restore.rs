//! Verified restore — the consuming half of chunked state sync.
//!
//! [`Restorer`] rebuilds a [`VbTree`] from a `VBC1` chunk stream (see
//! [`crate::chunks`]) and authenticates **every chunk as it ingests**:
//!
//! * chunk 0 pins the tree shape — every internal and leaf digest
//!   signature is verified under the owner's key, internal exponents
//!   must equal the product of their children's, separators must be
//!   strictly increasing, and depth must be uniform. The walk records,
//!   for every leaf in left-to-right order, its signed digest and the
//!   key bounds its separator path implies.
//! * each leaf chunk is checked against those pinned slots: chunk
//!   indexes must be contiguous (no gaps, no replays), keys must be
//!   strictly increasing and inside the pinned bounds, attribute
//!   exponents are **recomputed from the raw tuple values** and must
//!   match the signed attribute digests, the tuple exponent must be
//!   their product, the leaf exponent must be the product of its tuple
//!   exponents and equal the skeleton's pinned digest, and every
//!   attribute/tuple signature must verify.
//!
//! A flipped bit, a reordered chunk, a truncated stream, or a source
//! that committed mid-transfer all surface as a typed [`SyncError`]
//! *before* anything is installed — the same invariants
//! [`VbTree::check_integrity`] audits, enforced incrementally.

use crate::chunks::{StoreRestorer, SyncError, MAGIC};
use crate::node::{InternalNode, LeafNode, Node, NodeId, TupleEntry};
use crate::tree::{VbTree, VbTreeConfig};
use crate::tree_codec::get_digest;
use crate::{CoreError, CostMeter};
use bytes::Buf;
use std::sync::Arc;
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::SigVerifier;
use vbx_storage::{Geometry, Schema, Tuple};

/// One pinned leaf: where it goes in the arena, the signed digest it
/// must hash to, and the key bounds its separator path implies.
struct LeafSlot<const L: usize> {
    id: NodeId,
    digest: SignedDigest<L>,
    lo: Option<u64>,
    hi: Option<u64>,
}

/// Everything chunk 0 pinned; leaf chunks fill the arena in.
struct Plan<const L: usize> {
    schema: Schema,
    config: VbTreeConfig,
    nodes: Vec<Option<Arc<Node<L>>>>,
    root: NodeId,
    height: u32,
    len: u64,
    version: u64,
    key_version: u32,
    total_chunks: u32,
    per_chunk: usize,
    leaves: Vec<LeafSlot<L>>,
    next_leaf: usize,
    tuples: u64,
}

/// Streaming verifier/rebuilder for a `VBC1` chunk stream.
pub struct Restorer<const L: usize> {
    acc: Accumulator<L>,
    verifier: Arc<dyn SigVerifier>,
    plan: Option<Plan<L>>,
    next_chunk: u32,
}

impl<const L: usize> Restorer<L> {
    /// A restorer that authenticates the stream under `verifier` (the
    /// owner's public key).
    pub fn new(acc: Accumulator<L>, verifier: Arc<dyn SigVerifier>) -> Self {
        Self {
            acc,
            verifier,
            plan: None,
            next_chunk: 0,
        }
    }

    /// Chunks ingested (and verified) so far.
    pub fn chunks_ingested(&self) -> u32 {
        self.next_chunk
    }

    /// True once every declared chunk has been ingested.
    pub fn is_complete(&self) -> bool {
        self.plan
            .as_ref()
            .is_some_and(|p| self.next_chunk == p.total_chunks)
    }

    /// Feed the next chunk (chunks must arrive in index order); every
    /// check described in the module docs runs before this returns.
    pub fn ingest(&mut self, chunk: &[u8]) -> Result<(), SyncError> {
        let mut buf = chunk;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(SyncError::Malformed("bad chunk magic".into()));
        }
        buf.advance(4);
        if buf.remaining() < 4 + 4 + 8 {
            return Err(SyncError::Malformed("chunk header truncated".into()));
        }
        let index = buf.get_u32();
        let total = buf.get_u32();
        let version = buf.get_u64();
        if index != self.next_chunk {
            return Err(SyncError::ChunkOutOfOrder {
                expected: self.next_chunk,
                got: index,
            });
        }
        if index == 0 {
            self.ingest_skeleton(&mut buf, total, version)?;
        } else {
            self.ingest_leaf_run(&mut buf, total, version)?;
        }
        if buf.has_remaining() {
            return Err(SyncError::Malformed("trailing bytes in chunk".into()));
        }
        self.next_chunk += 1;
        Ok(())
    }

    /// Every chunk verified: assemble the tree. The per-chunk checks
    /// already enforce everything [`VbTree::check_integrity`] would.
    pub fn finish(self) -> Result<VbTree<L>, SyncError> {
        let Some(plan) = self.plan else {
            return Err(SyncError::Incomplete {
                ingested: 0,
                expected: 1,
            });
        };
        if self.next_chunk != plan.total_chunks {
            return Err(SyncError::Incomplete {
                ingested: self.next_chunk,
                expected: plan.total_chunks,
            });
        }
        if plan.tuples != plan.len {
            return Err(SyncError::DigestMismatch(format!(
                "tuple count mismatch: streamed {}, header pinned {}",
                plan.tuples, plan.len
            )));
        }
        debug_assert!(plan.nodes.iter().all(Option::is_some));
        Ok(VbTree {
            schema: plan.schema,
            config: plan.config,
            acc: self.acc,
            nodes: plan.nodes,
            free: Vec::new(),
            root: plan.root,
            height: plan.height,
            len: plan.len,
            version: plan.version,
            key_version: plan.key_version,
            meter: CostMeter::new(),
            dirty: None,
        })
    }

    fn ingest_skeleton(
        &mut self,
        buf: &mut &[u8],
        total: u32,
        version: u64,
    ) -> Result<(), SyncError> {
        if self.plan.is_some() {
            return Err(SyncError::Malformed("duplicate skeleton chunk".into()));
        }
        if buf.remaining() < 8 + 4 + 4 + 16 + 1 {
            return Err(SyncError::Malformed("skeleton header truncated".into()));
        }
        let len = buf.get_u64();
        let height = buf.get_u32();
        let key_version = buf.get_u32();
        let geometry = Geometry {
            block_size: buf.get_u32() as usize,
            key_len: buf.get_u32() as usize,
            ptr_len: buf.get_u32() as usize,
            digest_len: buf.get_u32() as usize,
        };
        let fanout_override = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return Err(SyncError::Malformed("fanout truncated".into()));
                }
                Some(buf.get_u32() as usize)
            }
            _ => return Err(SyncError::Malformed("bad fanout tag".into())),
        };
        let schema = Schema::decode(buf).map_err(|e| SyncError::Wire(CoreError::Storage(e)))?;
        if buf.remaining() < 4 {
            return Err(SyncError::Malformed("leaf-run size truncated".into()));
        }
        let per_chunk = buf.get_u32() as usize;
        if per_chunk == 0 {
            return Err(SyncError::Malformed("zero leaf-run size".into()));
        }

        let mut nodes = Vec::new();
        let mut leaves = Vec::new();
        let (root, _root_digest, depth) =
            self.decode_skeleton_node(buf, None, None, &mut nodes, &mut leaves)?;
        if depth != height {
            return Err(SyncError::DigestMismatch(format!(
                "height mismatch: skeleton depth {depth}, header pinned {height}"
            )));
        }
        let expected_total = 1 + leaves.len().div_ceil(per_chunk);
        if total as usize != expected_total {
            return Err(SyncError::Malformed(format!(
                "chunk count lie: declared {total}, skeleton implies {expected_total}"
            )));
        }
        self.plan = Some(Plan {
            schema,
            config: VbTreeConfig {
                geometry,
                fanout_override,
            },
            nodes,
            root,
            height,
            len,
            version,
            key_version,
            total_chunks: total,
            per_chunk,
            leaves,
            next_leaf: 0,
            tuples: 0,
        });
        Ok(())
    }

    /// Decode one skeleton node (preorder), verifying signatures,
    /// exponent products, separator order, and depth uniformity as it
    /// goes. Leaves become pinned [`LeafSlot`]s with an empty arena
    /// slot. Returns `(arena id, digest, depth)`.
    fn decode_skeleton_node(
        &self,
        buf: &mut &[u8],
        lo: Option<u64>,
        hi: Option<u64>,
        nodes: &mut Vec<Option<Arc<Node<L>>>>,
        leaves: &mut Vec<LeafSlot<L>>,
    ) -> Result<(NodeId, SignedDigest<L>, u32), SyncError> {
        if !buf.has_remaining() {
            return Err(SyncError::Malformed("skeleton node truncated".into()));
        }
        match buf.get_u8() {
            0 => {
                let digest = get_digest(buf, &self.acc, Some(DigestRole::Node))?;
                if !self.acc.verify_digest(self.verifier.as_ref(), &digest) {
                    return Err(SyncError::BadSignature(format!(
                        "leaf {} digest",
                        leaves.len()
                    )));
                }
                nodes.push(None);
                let id = nodes.len() - 1;
                leaves.push(LeafSlot {
                    id,
                    digest: digest.clone(),
                    lo,
                    hi,
                });
                Ok((id, digest, 1))
            }
            1 => {
                let digest = get_digest(buf, &self.acc, Some(DigestRole::Node))?;
                if !self.acc.verify_digest(self.verifier.as_ref(), &digest) {
                    return Err(SyncError::BadSignature("internal node digest".into()));
                }
                if buf.remaining() < 4 {
                    return Err(SyncError::Malformed("child count truncated".into()));
                }
                let n_children = buf.get_u32() as usize;
                if n_children == 0 || n_children > 1 << 20 {
                    return Err(SyncError::Malformed("implausible child count".into()));
                }
                let mut keys = Vec::with_capacity(n_children - 1);
                for _ in 0..n_children - 1 {
                    if buf.remaining() < 8 {
                        return Err(SyncError::Malformed("separator truncated".into()));
                    }
                    keys.push(buf.get_u64());
                }
                let mut children = Vec::with_capacity(n_children);
                let mut expected = self.acc.identity();
                let mut depth: Option<u32> = None;
                for i in 0..n_children {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    if let (Some(a), Some(b)) = (clo, chi) {
                        if a >= b {
                            return Err(SyncError::Malformed(
                                "separators not strictly increasing".into(),
                            ));
                        }
                    }
                    let (child, child_digest, d) =
                        self.decode_skeleton_node(buf, clo, chi, nodes, leaves)?;
                    if let Some(prev) = depth {
                        if prev != d {
                            return Err(SyncError::Malformed("ragged skeleton depth".into()));
                        }
                    }
                    depth = Some(d);
                    children.push(child);
                    expected = self.acc.combine(&expected, &child_digest.exp);
                }
                if expected != digest.exp {
                    return Err(SyncError::DigestMismatch(
                        "internal exponent is not the product of its children".into(),
                    ));
                }
                nodes.push(Some(Arc::new(Node::Internal(InternalNode {
                    keys,
                    children,
                    digest: digest.clone(),
                }))));
                Ok((nodes.len() - 1, digest, depth.unwrap() + 1))
            }
            _ => Err(SyncError::Malformed("bad skeleton node tag".into())),
        }
    }

    fn ingest_leaf_run(
        &mut self,
        buf: &mut &[u8],
        total: u32,
        version: u64,
    ) -> Result<(), SyncError> {
        let plan = self
            .plan
            .as_mut()
            .expect("index ordering guarantees the skeleton came first");
        if version != plan.version {
            return Err(SyncError::SourceChanged {
                expected: plan.version,
                got: version,
            });
        }
        if total != plan.total_chunks {
            return Err(SyncError::Malformed(format!(
                "chunk count changed mid-stream: {total} vs {}",
                plan.total_chunks
            )));
        }
        if buf.remaining() < 8 {
            return Err(SyncError::Malformed("leaf run header truncated".into()));
        }
        let start = buf.get_u32() as usize;
        let count = buf.get_u32() as usize;
        if start != plan.next_leaf {
            return Err(SyncError::Malformed(format!(
                "leaf run starts at {start}, expected {}",
                plan.next_leaf
            )));
        }
        let expected_count = plan.per_chunk.min(plan.leaves.len() - plan.next_leaf);
        if count != expected_count {
            return Err(SyncError::Malformed(format!(
                "leaf run carries {count} leaves, expected {expected_count}"
            )));
        }
        let n_cols = plan.schema.num_columns();
        for slot in &plan.leaves[start..start + count] {
            if buf.remaining() < 4 {
                return Err(SyncError::Malformed("leaf entry count truncated".into()));
            }
            let n = buf.get_u32() as usize;
            if n > 1 << 20 {
                return Err(SyncError::Malformed("implausible leaf entry count".into()));
            }
            let mut entries = Vec::with_capacity(n);
            let mut leaf_exp = self.acc.identity();
            let mut prev: Option<u64> = None;
            for _ in 0..n {
                let tuple =
                    Tuple::decode(buf).map_err(|e| SyncError::Wire(CoreError::Storage(e)))?;
                let k = tuple.key;
                if tuple.values.len() != n_cols {
                    return Err(SyncError::Malformed(format!(
                        "tuple {k} arity does not match schema"
                    )));
                }
                if prev.is_some_and(|p| k <= p) {
                    return Err(SyncError::Malformed(format!("keys out of order at {k}")));
                }
                if slot.lo.is_some_and(|l| k < l) || slot.hi.is_some_and(|h| k >= h) {
                    return Err(SyncError::DigestMismatch(format!(
                        "key {k} outside the leaf's pinned separator bounds"
                    )));
                }
                prev = Some(k);
                let mut attr_digests = Vec::with_capacity(n_cols);
                let mut tuple_exp = self.acc.identity();
                for (col, val) in tuple.values.iter().enumerate() {
                    let d = get_digest(buf, &self.acc, Some(DigestRole::Attribute))?;
                    let input = plan.schema.attribute_digest_input(col, k, val);
                    if self.acc.exp_from_bytes(&input) != d.exp {
                        return Err(SyncError::DigestMismatch(format!(
                            "attribute digest of key {k} col {col} does not match its value"
                        )));
                    }
                    if !self.acc.verify_digest(self.verifier.as_ref(), &d) {
                        return Err(SyncError::BadSignature(format!(
                            "attribute digest of key {k} col {col}"
                        )));
                    }
                    tuple_exp = self.acc.combine(&tuple_exp, &d.exp);
                    attr_digests.push(d);
                }
                let tuple_digest = get_digest(buf, &self.acc, Some(DigestRole::Tuple))?;
                if tuple_exp != tuple_digest.exp {
                    return Err(SyncError::DigestMismatch(format!(
                        "tuple digest of key {k} is not the product of its attributes"
                    )));
                }
                if !self
                    .acc
                    .verify_digest(self.verifier.as_ref(), &tuple_digest)
                {
                    return Err(SyncError::BadSignature(format!("tuple digest of key {k}")));
                }
                leaf_exp = self.acc.combine(&leaf_exp, &tuple_digest.exp);
                entries.push(TupleEntry {
                    tuple,
                    attr_digests,
                    tuple_digest,
                });
            }
            if leaf_exp != slot.digest.exp {
                return Err(SyncError::DigestMismatch(
                    "leaf exponent does not match the skeleton's pinned digest".into(),
                ));
            }
            plan.tuples += entries.len() as u64;
            plan.nodes[slot.id] = Some(Arc::new(Node::Leaf(LeafNode {
                entries,
                digest: slot.digest.clone(),
            })));
        }
        plan.next_leaf += count;
        Ok(())
    }
}

impl<const L: usize> StoreRestorer<VbTree<L>> for Restorer<L> {
    fn ingest(&mut self, chunk: &[u8]) -> Result<(), SyncError> {
        Restorer::ingest(self, chunk)
    }

    fn finish(self: Box<Self>) -> Result<VbTree<L>, SyncError> {
        Restorer::finish(*self)
    }
}
