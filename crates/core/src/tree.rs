//! The Verifiable B-tree.
//!
//! A B+-tree over tuples keyed by primary key, where every attribute,
//! tuple and node carries a digest signed by the central DBMS
//! (Section 3.2, Figure 3). Digest exponents compose multiplicatively in
//! `Z_q`, so:
//!
//! * a node's exponent equals the product of **all** tuple exponents in
//!   its subtree (the flattening that makes Lemma 1/2's equations work);
//! * inserting a tuple multiplies its exponent into every node on the
//!   root-to-leaf path and nothing else (Section 3.4);
//! * splits never change an ancestor's exponent (the product is
//!   preserved), so only the two halves are re-signed.
//!
//! Mutations are parameterised by a [`DigestSource`]: the central server
//! signs fresh digests, edge replicas replay pre-signed digests from
//! update deltas (they have no private key — Section 3.4).

use crate::meter::CostMeter;
use crate::node::{InternalNode, LeafNode, Node, NodeId, TupleEntry};
use crate::source::{DeferredSource, DigestSource, SigningSource};
use crate::CoreError;
use std::sync::Arc;
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::{SigVerifier, Signer};
use vbx_mathx::Uint;
use vbx_storage::{Geometry, Schema, Table, Tuple};

/// Construction parameters.
#[derive(Clone, Debug, Default)]
pub struct VbTreeConfig {
    /// Byte-level node geometry (Table 1 defaults).
    pub geometry: Geometry,
    /// Override the geometric fan-out (tests use small fan-outs to get
    /// deep trees from few tuples).
    pub fanout_override: Option<usize>,
}

impl VbTreeConfig {
    /// Effective fan-out (maximum entries per node).
    pub fn fanout(&self) -> usize {
        let f = self
            .fanout_override
            .unwrap_or_else(|| self.geometry.vbtree_fanout());
        assert!(f >= 2, "fan-out must be at least 2");
        f
    }

    /// Config with an explicit small fan-out (testing helper).
    pub fn with_fanout(fanout: usize) -> Self {
        Self {
            geometry: Geometry::default(),
            fanout_override: Some(fanout),
        }
    }
}

/// Aggregate shape statistics (used by the Figure 8/9 measurements and
/// the storage report).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VbTreeStats {
    /// Height in levels (1 = single leaf).
    pub height: u32,
    /// Total node count.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Tuple count.
    pub tuples: u64,
    /// Effective fan-out used.
    pub fanout: usize,
    /// Logical index size: `nodes × block_size` (the paper's storage
    /// accounting).
    pub logical_bytes: usize,
    /// Actual bytes of signed digests held in nodes and tuples.
    pub digest_bytes: usize,
}

/// Row count below which a parallel bulk build is not worth the thread
/// spawn/join overhead and the loaders stay sequential.
pub const PARALLEL_BUILD_THRESHOLD: u64 = 2_048;

/// Worker-thread count the scheme layer uses for bulk builds: 1 below
/// [`PARALLEL_BUILD_THRESHOLD`] rows, otherwise the machine's available
/// parallelism.
pub fn default_build_threads(rows: usize) -> usize {
    if (rows as u64) < PARALLEL_BUILD_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

/// Primitive-operation counts produced while materialising tuple
/// entries, accumulated into the tree's [`CostMeter`]. Kept separate so
/// the parallel bulk loader's workers can count without sharing the
/// meter.
#[derive(Clone, Copy, Debug, Default)]
struct EntryOps {
    hashes: u64,
    combines: u64,
    signs: u64,
}

impl EntryOps {
    fn absorb(&mut self, other: &EntryOps) {
        self.hashes += other.hashes;
        self.combines += other.combines;
        self.signs += other.signs;
    }

    fn add_to(&self, meter: &mut CostMeter) {
        meter.hash_ops += self.hashes;
        meter.combine_ops += self.combines;
        meter.sign_ops += self.signs;
    }
}

/// The per-tuple digest materialisation (formulas (1) and (2)),
/// independent of any tree instance so the bulk loaders can fan it out
/// across threads: per-attribute digests, the combined tuple exponent,
/// and the signed tuple digest.
fn compute_entry<const L: usize>(
    schema: &Schema,
    acc: &Accumulator<L>,
    tuple: Tuple,
    src: &mut dyn DigestSource<L>,
) -> Result<(TupleEntry<L>, EntryOps), CoreError> {
    let mut ops = EntryOps::default();
    let mut attr_digests = Vec::with_capacity(tuple.values.len());
    let mut tuple_exp = acc.identity();
    for (col, value) in tuple.values.iter().enumerate() {
        let input = schema.attribute_digest_input(col, tuple.key, value);
        let e = acc.exp_from_bytes(&input);
        ops.hashes += 1;
        tuple_exp = acc.combine(&tuple_exp, &e);
        ops.combines += 1;
        attr_digests.push(src.issue(acc, DigestRole::Attribute, &e)?);
        if src.counts_as_sign() {
            ops.signs += 1;
        }
    }
    let tuple_digest = src.issue(acc, DigestRole::Tuple, &tuple_exp)?;
    if src.counts_as_sign() {
        ops.signs += 1;
    }
    Ok((
        TupleEntry {
            tuple,
            attr_digests,
            tuple_digest,
        },
        ops,
    ))
}

/// The Verifiable B-tree.
///
/// Nodes are held behind [`Arc`]s, so `clone()` is a **cheap snapshot
/// handle**: it copies one pointer per arena slot and shares every node.
/// Mutations go through copy-on-write ([`Arc::make_mut`]), detaching
/// only the nodes an update actually touches — a clone taken before an
/// update keeps observing the pre-update tree (the serving replicas in
/// `vbx-edge` swap such snapshots under concurrent readers).
#[derive(Clone)]
pub struct VbTree<const L: usize> {
    pub(crate) schema: Schema,
    pub(crate) config: VbTreeConfig,
    pub(crate) acc: Accumulator<L>,
    pub(crate) nodes: Vec<Option<Arc<Node<L>>>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) height: u32,
    pub(crate) len: u64,
    /// Monotone version, bumped on every successful update.
    pub(crate) version: u64,
    /// Version of the signing key the digests are currently under.
    pub(crate) key_version: u32,
    pub(crate) meter: CostMeter,
    /// Node ids whose digests were re-issued while dirty tracking was
    /// on (the deferred-signing batch paths). `None` = tracking off.
    pub(crate) dirty: Option<std::collections::BTreeSet<NodeId>>,
}

impl<const L: usize> VbTree<L> {
    /// Empty tree.
    pub fn new(
        schema: Schema,
        config: VbTreeConfig,
        acc: Accumulator<L>,
        signer: &dyn Signer,
    ) -> Self {
        assert!(
            schema.num_columns() >= 1,
            "VB-tree requires at least one payload attribute"
        );
        let mut tree = Self {
            schema,
            config,
            acc,
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            height: 1,
            len: 0,
            version: 0,
            key_version: signer.key_version(),
            meter: CostMeter::new(),
            dirty: None,
        };
        let mut src = SigningSource::new(signer);
        let identity = tree.acc.identity();
        let digest = tree
            .issue_node(identity, &mut src)
            .expect("signing cannot fail");
        tree.root = tree.alloc(Node::Leaf(LeafNode {
            entries: Vec::new(),
            digest,
        }));
        tree
    }

    /// Bulk-load from a [`Table`] (fully packed, as the paper's analysis
    /// assumes).
    pub fn bulk_load(
        table: &Table,
        config: VbTreeConfig,
        acc: Accumulator<L>,
        signer: &dyn Signer,
    ) -> Self {
        let mut tree = Self::new(table.schema().clone(), config, acc, signer);
        let mut src = SigningSource::new(signer);
        let entries: Vec<TupleEntry<L>> = table
            .iter()
            .map(|t| {
                tree.make_entry_with(t.clone(), &mut src)
                    .expect("signing cannot fail")
            })
            .collect();
        tree.pack_entries(entries, &mut src);
        tree
    }

    /// Bulk-load with the per-tuple digest work (attribute hashes,
    /// exponent combines, signatures) fanned out over `threads` OS
    /// threads. The tree produced is **identical** to
    /// [`bulk_load`](Self::bulk_load) — per-tuple digests are
    /// independent, so only the cheap node-packing pass stays
    /// sequential. With `threads <= 1`, or when the machine has only a
    /// single hardware thread (spawning workers would just add
    /// spawn/join overhead on top of the same serial work), this *is*
    /// the sequential path.
    pub fn bulk_load_parallel(
        table: &Table,
        config: VbTreeConfig,
        acc: Accumulator<L>,
        signer: &dyn Signer,
        threads: usize,
    ) -> Self {
        let hw = std::thread::available_parallelism().map_or(1, usize::from);
        let threads = if hw == 1 { 1 } else { threads }
            .max(1)
            .min(table.len().max(1));
        if threads == 1 {
            return Self::bulk_load(table, config, acc, signer);
        }
        let tuples: Vec<&Tuple> = table.iter().collect();
        let chunk = tuples.len().div_ceil(threads);
        let schema = table.schema();
        let per_chunk: Vec<(Vec<TupleEntry<L>>, EntryOps)> = std::thread::scope(|scope| {
            let handles: Vec<_> = tuples
                .chunks(chunk)
                .map(|part| {
                    let acc = &acc;
                    scope.spawn(move || {
                        let mut src = SigningSource::new(signer);
                        let mut ops = EntryOps::default();
                        let entries = part
                            .iter()
                            .map(|t| {
                                let (entry, o) = compute_entry(schema, acc, (*t).clone(), &mut src)
                                    .expect("signing cannot fail");
                                ops.absorb(&o);
                                entry
                            })
                            .collect::<Vec<_>>();
                        (entries, ops)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bulk-load worker panicked"))
                .collect()
        });

        let mut tree = Self::new(schema.clone(), config, acc, signer);
        let mut entries = Vec::with_capacity(tuples.len());
        for (part, ops) in per_chunk {
            entries.extend(part);
            ops.add_to(&mut tree.meter);
        }
        let mut src = SigningSource::new(signer);
        tree.pack_entries(entries, &mut src);
        tree
    }

    /// Shared tail of the bulk loaders: pack prepared tuple entries into
    /// fully-packed leaves and build the upper levels bottom-up.
    fn pack_entries(&mut self, entries: Vec<TupleEntry<L>>, src: &mut SigningSource<'_>) {
        let tree = self;
        let fanout = tree.config.fanout();
        if entries.is_empty() {
            return;
        }
        tree.len = entries.len() as u64;

        // Free the placeholder empty leaf.
        tree.dealloc(tree.root);

        // Level 0: pack leaves.
        let mut level: Vec<(u64, NodeId, Uint<L>)> = Vec::new(); // (min_key, id, exp)
        let mut chunk: Vec<TupleEntry<L>> = Vec::with_capacity(fanout);
        let flush = |tree: &mut Self,
                     src: &mut SigningSource<'_>,
                     chunk: &mut Vec<TupleEntry<L>>,
                     level: &mut Vec<(u64, NodeId, Uint<L>)>| {
            if chunk.is_empty() {
                return;
            }
            let entries = std::mem::take(chunk);
            let min_key = entries[0].key();
            let exp = tree.product_of_tuples(&entries);
            let digest = tree.issue_node(exp, src).expect("signing cannot fail");
            let id = tree.alloc(Node::Leaf(LeafNode { entries, digest }));
            level.push((min_key, id, exp));
        };
        for e in entries {
            chunk.push(e);
            if chunk.len() == fanout {
                flush(tree, src, &mut chunk, &mut level);
            }
        }
        flush(tree, src, &mut chunk, &mut level);

        // Upper levels.
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next: Vec<(u64, NodeId, Uint<L>)> = Vec::new();
            for group in level.chunks(fanout) {
                let min_key = group[0].0;
                let keys: Vec<u64> = group[1..].iter().map(|(k, _, _)| *k).collect();
                let children: Vec<NodeId> = group.iter().map(|(_, id, _)| *id).collect();
                let mut exp = tree.acc.identity();
                for (_, _, e) in group {
                    exp = tree.acc.combine(&exp, e);
                    tree.meter.combine_ops += 1;
                }
                let digest = tree.issue_node(exp, src).expect("signing cannot fail");
                let id = tree.alloc(Node::Internal(InternalNode {
                    keys,
                    children,
                    digest,
                }));
                next.push((min_key, id, exp));
            }
            level = next;
            height += 1;
        }
        tree.root = level[0].1;
        tree.height = height;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The schema this tree indexes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The digest algebra.
    pub fn accumulator(&self) -> &Accumulator<L> {
        &self.acc
    }

    /// Tree configuration.
    pub fn config(&self) -> &VbTreeConfig {
        &self.config
    }

    /// Number of tuples.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root node id (used by the VO builder and lock manager).
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Update version (bumped by every insert/delete).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Version of the signing key the tree's digests are under.
    pub fn key_version(&self) -> u32 {
        self.key_version
    }

    /// The root's signed digest.
    pub fn root_digest(&self) -> &SignedDigest<L> {
        self.node(self.root).digest()
    }

    /// Cumulative maintenance costs (build + updates so far).
    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Reset the maintenance meter and return its previous value.
    pub fn take_meter(&mut self) -> CostMeter {
        std::mem::take(&mut self.meter)
    }

    /// Node ids on the root-to-leaf path for `key` — the digests an
    /// update transaction X-locks (Section 3.4).
    pub fn path_node_ids(&self, key: u64) -> Vec<NodeId> {
        let (leaf, path) = self.descend(key);
        path.iter().map(|&(id, _)| id).chain([leaf]).collect()
    }

    /// Node ids of the enveloping subtree a query S-locks: the top node
    /// covering `[lo, hi]` plus everything under it that overlaps.
    pub fn envelope_node_ids(&self, lo: u64, hi: u64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_envelope(self.root, lo, hi, &mut out);
        out
    }

    fn collect_envelope(&self, id: NodeId, lo: u64, hi: u64, out: &mut Vec<NodeId>) {
        out.push(id);
        if let Node::Internal(n) = self.node(id) {
            for i in 0..n.children.len() {
                if n.child_overlaps(i, lo, hi) {
                    self.collect_envelope(n.children[i], lo, hi, out);
                }
            }
        }
    }

    /// Borrow a node by id.
    pub(crate) fn node(&self, id: NodeId) -> &Node<L> {
        self.nodes[id].as_deref().expect("live node")
    }

    /// Mutable borrow of a node, detaching it from any shared snapshot
    /// first (copy-on-write).
    fn node_mut(&mut self, id: NodeId) -> &mut Node<L> {
        Arc::make_mut(self.nodes[id].as_mut().expect("live node"))
    }

    // ------------------------------------------------------------------
    // Digest helpers
    // ------------------------------------------------------------------

    fn issue_node(
        &mut self,
        exp: Uint<L>,
        src: &mut dyn DigestSource<L>,
    ) -> Result<SignedDigest<L>, CoreError> {
        if src.counts_as_sign() {
            self.meter.sign_ops += 1;
        }
        self.key_version = src.key_version();
        src.issue(&self.acc, DigestRole::Node, &exp)
    }

    /// Install a node digest, recording the node as dirty when batch
    /// tracking is on.
    fn set_node_digest(&mut self, id: NodeId, digest: SignedDigest<L>) {
        self.mark_dirty(id);
        self.node_mut(id).set_digest(digest);
    }

    fn mark_dirty(&mut self, id: NodeId) {
        if let Some(dirty) = &mut self.dirty {
            dirty.insert(id);
        }
    }

    fn product_of_tuples(&mut self, entries: &[TupleEntry<L>]) -> Uint<L> {
        let mut acc = self.acc.identity();
        for e in entries {
            acc = self.acc.combine(&acc, &e.tuple_digest.exp);
            self.meter.combine_ops += 1;
        }
        acc
    }

    fn product_of_children(&mut self, children: &[NodeId]) -> Uint<L> {
        let mut acc = self.acc.identity();
        for &c in children {
            let e = self.node(c).digest().exp;
            acc = self.acc.combine(&acc, &e);
            self.meter.combine_ops += 1;
        }
        acc
    }

    /// Build the full digest materialisation for a tuple with a signer
    /// (central-server path).
    pub fn make_entry(&mut self, tuple: Tuple, signer: &dyn Signer) -> TupleEntry<L> {
        self.make_entry_with(tuple, &mut SigningSource::new(signer))
            .expect("signing cannot fail")
    }

    /// Build the digest materialisation through an arbitrary source:
    /// per-attribute signed digests (formula (1)) and the signed tuple
    /// digest (formula (2)).
    pub fn make_entry_with(
        &mut self,
        tuple: Tuple,
        src: &mut dyn DigestSource<L>,
    ) -> Result<TupleEntry<L>, CoreError> {
        let (entry, ops) = compute_entry(&self.schema, &self.acc, tuple, src)?;
        ops.add_to(&mut self.meter);
        Ok(entry)
    }

    // ------------------------------------------------------------------
    // Arena
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: Node<L>) -> NodeId {
        let id = if let Some(id) = self.free.pop() {
            self.nodes[id] = Some(Arc::new(node));
            id
        } else {
            self.nodes.push(Some(Arc::new(node)));
            self.nodes.len() - 1
        };
        self.mark_dirty(id);
        id
    }

    fn dealloc(&mut self, id: NodeId) {
        self.nodes[id] = None;
        self.free.push(id);
        if let Some(dirty) = &mut self.dirty {
            dirty.remove(&id);
        }
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Leaf id containing (or that would contain) `key`, plus the
    /// root-to-leaf path as `(node, child_index)` pairs.
    pub(crate) fn descend(&self, key: u64) -> (NodeId, Vec<(NodeId, usize)>) {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal(n) => {
                    let ci = n.child_index(key);
                    path.push((id, ci));
                    id = n.children[ci];
                }
                Node::Leaf(_) => return (id, path),
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Option<&Tuple> {
        let (leaf_id, _) = self.descend(key);
        let leaf = self.node(leaf_id).as_leaf();
        leaf.entries
            .binary_search_by_key(&key, |e| e.key())
            .ok()
            .map(|i| &leaf.entries[i].tuple)
    }

    /// All tuples with keys in `[lo, hi]`, in key order.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<&Tuple> {
        let mut out = Vec::new();
        self.collect_range(self.root, lo, hi, &mut out);
        out
    }

    fn collect_range<'a>(&'a self, id: NodeId, lo: u64, hi: u64, out: &mut Vec<&'a Tuple>) {
        match self.node(id) {
            Node::Leaf(n) => {
                for e in &n.entries {
                    if e.key() >= lo && e.key() <= hi {
                        out.push(&e.tuple);
                    }
                }
            }
            Node::Internal(n) => {
                for i in 0..n.children.len() {
                    if n.child_overlaps(i, lo, hi) {
                        self.collect_range(n.children[i], lo, hi, out);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insert (Section 3.4)
    // ------------------------------------------------------------------

    /// Insert a tuple, signing fresh digests (central-server path).
    pub fn insert(&mut self, tuple: Tuple, signer: &dyn Signer) -> Result<(), CoreError> {
        self.insert_with_source(tuple, &mut SigningSource::new(signer))
    }

    /// Insert through an arbitrary digest source. Digest maintenance is
    /// the paper's incremental update: each node digest on the
    /// root-to-leaf path absorbs the new tuple exponent
    /// (`D'_N = h(h^{-1}(D_N) | d_T)` in exponent space), and splits
    /// re-sign only the two halves.
    pub fn insert_with_source(
        &mut self,
        tuple: Tuple,
        src: &mut dyn DigestSource<L>,
    ) -> Result<(), CoreError> {
        self.schema
            .check_row(&tuple.values)
            .map_err(CoreError::Storage)?;
        if self.get(tuple.key).is_some() {
            return Err(CoreError::DuplicateKey(tuple.key));
        }
        let key = tuple.key;
        let entry = self.make_entry_with(tuple, src)?;
        let e_t = entry.tuple_digest.exp;

        let (leaf_id, path) = self.descend(key);

        // 1. Insert into the leaf and absorb e_t into its digest.
        {
            let leaf = self.node_mut(leaf_id).as_leaf_mut();
            let pos = leaf.entries.partition_point(|e| e.key() < key);
            leaf.entries.insert(pos, entry);
        }
        self.absorb_exponent(leaf_id, &e_t, src)?;

        // 2. Absorb e_t into every ancestor (any order — commutative).
        for &(anc, _) in &path {
            self.absorb_exponent(anc, &e_t, src)?;
        }

        // 3. Resolve overflows bottom-up.
        let fanout = self.config.fanout();
        let mut stack = path;
        let mut current = leaf_id;
        while self.node(current).entry_count() > fanout {
            let (sep, right) = self.split(current, src)?;
            match stack.pop() {
                Some((pid, ci)) => {
                    let parent = self.node_mut(pid).as_internal_mut();
                    parent.keys.insert(ci, sep);
                    parent.children.insert(ci + 1, right);
                    current = pid;
                }
                None => {
                    // Root split: new root over the two halves. Its
                    // exponent is the product of the halves' exponents
                    // (== all tuples), freshly signed.
                    let exp = self.product_of_children(&[current, right]);
                    let digest = self.issue_node(exp, src)?;
                    let new_root = self.alloc(Node::Internal(InternalNode {
                        keys: vec![sep],
                        children: vec![current, right],
                        digest,
                    }));
                    self.root = new_root;
                    self.height += 1;
                    break;
                }
            }
        }

        self.len += 1;
        self.version += 1;
        Ok(())
    }

    /// Batch insert with **signature amortisation** (extension over the
    /// paper's per-tuple insert): all tuples are inserted structurally
    /// with deferred (empty) signatures, then every dirty digest is
    /// signed exactly once in a final sweep. `k` inserts sharing
    /// root-to-leaf paths thus cost `O(dirty nodes)` signatures instead
    /// of `O(k · height)` — signing is the dominant update cost
    /// (equation (11) weights it ≈ 10⁴ × a hash).
    ///
    /// The batch is atomic with respect to validation: duplicate keys
    /// (among the batch or with existing tuples) and schema mismatches
    /// are rejected before any mutation.
    pub fn insert_batch(
        &mut self,
        tuples: Vec<Tuple>,
        signer: &dyn Signer,
    ) -> Result<usize, CoreError> {
        // Validate everything up front so the batch never half-applies.
        let mut seen = std::collections::BTreeSet::new();
        for t in &tuples {
            self.schema
                .check_row(&t.values)
                .map_err(CoreError::Storage)?;
            if !seen.insert(t.key) || self.get(t.key).is_some() {
                return Err(CoreError::DuplicateKey(t.key));
            }
        }
        let n = tuples.len();
        // Atomic past validation too: an unexpected mid-batch failure
        // must not leave unsigned (deferred) digests or an abandoned
        // dirty set behind — restore the pre-batch tree (cheap: the
        // node arena is copy-on-write).
        let backup = self.clone();
        let mut deferred = DeferredSource::new(signer.key_version());
        self.begin_dirty_tracking();
        for t in tuples {
            if let Err(e) = self.insert_with_source(t, &mut deferred) {
                *self = backup;
                return Err(e);
            }
        }
        // Signing sweep over the nodes the batch actually touched (the
        // pre-PR-5 sweep scanned the whole arena — O(nodes) per batch).
        let dirty = self.take_dirty();
        self.sign_dirty_nodes(&dirty, signer);
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Deferred-signing batch machinery (shared by `insert_batch` and the
    // scheme layer's `update_batch` / `apply_delta_batch`)
    // ------------------------------------------------------------------

    /// Start recording which nodes get their digests re-issued. The
    /// subsequent mutations are expected to run through a
    /// [`DeferredSource`], leaving every touched digest unsigned until a
    /// single sweep over [`take_dirty`](Self::take_dirty).
    pub(crate) fn begin_dirty_tracking(&mut self) {
        self.dirty = Some(std::collections::BTreeSet::new());
    }

    /// Stop tracking and return the dirty node ids.
    pub(crate) fn take_dirty(&mut self) -> Vec<NodeId> {
        self.dirty
            .take()
            .map(|d| d.into_iter().collect())
            .unwrap_or_default()
    }

    /// Reorder dirty node ids into **structural preorder** (root first,
    /// depth-first, children left to right) — the deterministic sweep
    /// order both the signing central server and the replaying replicas
    /// iterate in. Arena `NodeId`s are *not* canonical (`decode_tree`
    /// renumbers nodes in postorder, bulk loads level by level, and the
    /// free list reuses slots), but the logical tree shape is identical
    /// on both sides of a batch replay, so the walk is.
    fn structural_order(&self, ids: &[NodeId]) -> Vec<NodeId> {
        let dirty: std::collections::BTreeSet<NodeId> = ids.iter().copied().collect();
        let mut out = Vec::with_capacity(ids.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            // The dirty set is ancestor-closed — any descendant change
            // re-issues (and so marks) every ancestor digest up to the
            // root — so a clean subtree cannot hold dirty nodes and the
            // walk is O(dirty × fanout), not O(tree).
            if !dirty.contains(&id) {
                continue;
            }
            out.push(id);
            if let Node::Internal(n) = self.node(id) {
                // Reversed push so the leftmost child pops first.
                stack.extend(n.children.iter().rev());
            }
        }
        debug_assert_eq!(
            out.len(),
            ids.len(),
            "every dirty node must be reachable from the root through dirty ancestors"
        );
        out
    }

    /// The signing sweep: give every unsigned digest under the dirty
    /// nodes (node digests, plus attribute/tuple digests of entries
    /// inserted by the batch) exactly one fresh signature, visiting
    /// nodes in [structural preorder](Self::structural_order). Returns
    /// the signed digests in sweep order — the packed payload replicas
    /// replay through [`replay_dirty_nodes`](Self::replay_dirty_nodes).
    pub(crate) fn sign_dirty_nodes(
        &mut self,
        ids: &[NodeId],
        signer: &dyn Signer,
    ) -> Vec<SignedDigest<L>> {
        let ids = self.structural_order(ids);
        let mut out = Vec::new();
        self.key_version = signer.key_version();
        for id in ids {
            let node_exp = {
                let node = self.node(id);
                node.digest().sig.is_empty().then(|| node.digest().exp)
            };
            if let Some(exp) = node_exp {
                self.meter.sign_ops += 1;
                let d = self.acc.sign_digest(signer, DigestRole::Node, &exp);
                out.push(d.clone());
                self.node_mut(id).set_digest(d);
            }
            // Leaf entries inserted by this batch carry unsigned
            // attribute/tuple digests too.
            let mut fixes: Vec<(usize, Vec<Uint<L>>, Uint<L>)> = Vec::new();
            if let Node::Leaf(leaf) = self.node(id) {
                for (i, e) in leaf.entries.iter().enumerate() {
                    if e.tuple_digest.sig.is_empty() {
                        fixes.push((
                            i,
                            e.attr_digests.iter().map(|d| d.exp).collect(),
                            e.tuple_digest.exp,
                        ));
                    }
                }
            }
            for (i, attr_exps, tuple_exp) in fixes {
                let attr_digests: Vec<SignedDigest<L>> = attr_exps
                    .iter()
                    .map(|e| {
                        self.meter.sign_ops += 1;
                        let d = self.acc.sign_digest(signer, DigestRole::Attribute, e);
                        out.push(d.clone());
                        d
                    })
                    .collect();
                self.meter.sign_ops += 1;
                let tuple_digest = self.acc.sign_digest(signer, DigestRole::Tuple, &tuple_exp);
                out.push(tuple_digest.clone());
                let leaf = self.node_mut(id).as_leaf_mut();
                leaf.entries[i].attr_digests = attr_digests;
                leaf.entries[i].tuple_digest = tuple_digest;
            }
        }
        out
    }

    /// The replay sweep: walk the dirty nodes in the same deterministic
    /// order as [`sign_dirty_nodes`](Self::sign_dirty_nodes), consuming
    /// one pre-signed digest per unsigned signing site and checking that
    /// role and locally recomputed exponent match. Any mismatch (or a
    /// digest count that does not line up) means a forged batch or a
    /// diverged replica.
    pub(crate) fn replay_dirty_nodes(
        &mut self,
        ids: &[NodeId],
        digests: &[SignedDigest<L>],
        key_version: u32,
    ) -> Result<(), CoreError> {
        let ids = self.structural_order(ids);
        let mut next = 0usize;
        let mut pop = |role: DigestRole, exp: &Uint<L>| -> Result<SignedDigest<L>, CoreError> {
            let d = digests.get(next).ok_or_else(|| {
                CoreError::ReplicaDivergence(
                    "batch payload exhausted: replica has more dirty digests".into(),
                )
            })?;
            next += 1;
            if d.role != role {
                return Err(CoreError::ReplicaDivergence(format!(
                    "batch digest role {:?} != local {:?}",
                    d.role, role
                )));
            }
            if &d.exp != exp {
                return Err(CoreError::ReplicaDivergence(
                    "batch digest exponent differs from locally recomputed digest".into(),
                ));
            }
            Ok(d.clone())
        };
        self.key_version = key_version;
        for id in ids {
            let node_exp = {
                let node = self.node(id);
                node.digest().sig.is_empty().then(|| node.digest().exp)
            };
            if let Some(exp) = node_exp {
                let d = pop(DigestRole::Node, &exp)?;
                self.node_mut(id).set_digest(d);
            }
            let mut fixes: Vec<(usize, Vec<Uint<L>>, Uint<L>)> = Vec::new();
            if let Node::Leaf(leaf) = self.node(id) {
                for (i, e) in leaf.entries.iter().enumerate() {
                    if e.tuple_digest.sig.is_empty() {
                        fixes.push((
                            i,
                            e.attr_digests.iter().map(|d| d.exp).collect(),
                            e.tuple_digest.exp,
                        ));
                    }
                }
            }
            for (i, attr_exps, tuple_exp) in fixes {
                let mut attr_digests = Vec::with_capacity(attr_exps.len());
                for e in &attr_exps {
                    attr_digests.push(pop(DigestRole::Attribute, e)?);
                }
                let tuple_digest = pop(DigestRole::Tuple, &tuple_exp)?;
                let leaf = self.node_mut(id).as_leaf_mut();
                leaf.entries[i].attr_digests = attr_digests;
                leaf.entries[i].tuple_digest = tuple_digest;
            }
        }
        if next != digests.len() {
            return Err(CoreError::ReplicaDivergence(format!(
                "{} unused digests after batch replay",
                digests.len() - next
            )));
        }
        Ok(())
    }

    fn absorb_exponent(
        &mut self,
        id: NodeId,
        e: &Uint<L>,
        src: &mut dyn DigestSource<L>,
    ) -> Result<(), CoreError> {
        let old = self.node(id).digest().exp;
        let new = self.acc.combine(&old, e);
        self.meter.combine_ops += 1;
        let digest = self.issue_node(new, src)?;
        self.set_node_digest(id, digest);
        Ok(())
    }

    /// Split an over-full node; returns `(separator_key, right_id)`.
    fn split(
        &mut self,
        id: NodeId,
        src: &mut dyn DigestSource<L>,
    ) -> Result<(u64, NodeId), CoreError> {
        let node = self.nodes[id].take().expect("live node");
        // Detach from any shared snapshot before restructuring. Both
        // halves get re-issued digests (the right half through `alloc`).
        self.mark_dirty(id);
        let node = Arc::try_unwrap(node).unwrap_or_else(|shared| (*shared).clone());
        match node {
            Node::Leaf(mut leaf) => {
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let sep = right_entries[0].key();
                let left_exp = self.product_of_tuples(&leaf.entries);
                let right_exp = self.product_of_tuples(&right_entries);
                leaf.digest = self.issue_node(left_exp, src)?;
                let right_digest = self.issue_node(right_exp, src)?;
                self.nodes[id] = Some(Arc::new(Node::Leaf(leaf)));
                let right = self.alloc(Node::Leaf(LeafNode {
                    entries: right_entries,
                    digest: right_digest,
                }));
                Ok((sep, right))
            }
            Node::Internal(mut int) => {
                let mid = int.children.len() / 2;
                let right_children = int.children.split_off(mid);
                let right_keys = int.keys.split_off(mid);
                let sep = int.keys.pop().expect("separator for promoted key");
                let left_exp = self.product_of_children(&int.children);
                let right_exp = self.product_of_children(&right_children);
                int.digest = self.issue_node(left_exp, src)?;
                let right_digest = self.issue_node(right_exp, src)?;
                self.nodes[id] = Some(Arc::new(Node::Internal(int)));
                let right = self.alloc(Node::Internal(InternalNode {
                    keys: right_keys,
                    children: right_children,
                    digest: right_digest,
                }));
                Ok((sep, right))
            }
        }
    }

    // ------------------------------------------------------------------
    // Delete (Section 3.4)
    // ------------------------------------------------------------------

    /// Delete one tuple, signing fresh digests (central-server path).
    pub fn delete(&mut self, key: u64, signer: &dyn Signer) -> Result<Tuple, CoreError> {
        self.delete_with_source(key, &mut SigningSource::new(signer))
    }

    /// Delete one tuple through an arbitrary digest source, recomputing
    /// digests bottom-up along the path — the paper's delete transaction
    /// ("the tuples' contribution … cannot be reversed out immediately;
    /// … re-calculate the digests back up to the root"). Nodes are
    /// removed only when empty, following the paper's citation of [9].
    pub fn delete_with_source(
        &mut self,
        key: u64,
        src: &mut dyn DigestSource<L>,
    ) -> Result<Tuple, CoreError> {
        let (leaf_id, path) = self.descend(key);
        let removed = {
            let leaf = self.node_mut(leaf_id).as_leaf_mut();
            match leaf.entries.binary_search_by_key(&key, |e| e.key()) {
                Ok(i) => leaf.entries.remove(i),
                Err(_) => return Err(CoreError::KeyNotFound(key)),
            }
        };

        // Recompute the leaf digest from surviving entries.
        let leaf_entries = match self.node(leaf_id) {
            Node::Leaf(n) => n.entries.clone(),
            _ => unreachable!(),
        };
        let exp = self.product_of_tuples(&leaf_entries);
        let digest = self.issue_node(exp, src)?;
        self.set_node_digest(leaf_id, digest);

        // Walk back up: drop emptied children, recompute ancestor digests.
        let mut child_id = leaf_id;
        for &(pid, ci) in path.iter().rev() {
            let child_empty = self.node(child_id).entry_count() == 0;
            if child_empty {
                let parent = self.node_mut(pid).as_internal_mut();
                parent.children.remove(ci);
                if parent.keys.is_empty() {
                    // Parent had a single child; root-shrink handles it.
                } else if ci == 0 {
                    parent.keys.remove(0);
                } else {
                    parent.keys.remove(ci - 1);
                }
                self.dealloc(child_id);
            }
            let children = match self.node(pid) {
                Node::Internal(n) => n.children.clone(),
                _ => unreachable!(),
            };
            let exp = self.product_of_children(&children);
            let digest = self.issue_node(exp, src)?;
            self.set_node_digest(pid, digest);
            child_id = pid;
        }

        self.shrink_root();
        self.len -= 1;
        self.version += 1;
        Ok(removed.tuple)
    }

    /// Fast-path delete using the field structure of `Z_q`: the tuple's
    /// exponent is *divided out* of every path digest instead of
    /// recomputing products (an extension over the paper; see DESIGN.md).
    pub fn delete_uncombine(&mut self, key: u64, signer: &dyn Signer) -> Result<Tuple, CoreError> {
        let mut src = SigningSource::new(signer);
        let (leaf_id, path) = self.descend(key);
        let removed = {
            let leaf = self.node_mut(leaf_id).as_leaf_mut();
            match leaf.entries.binary_search_by_key(&key, |e| e.key()) {
                Ok(i) => leaf.entries.remove(i),
                Err(_) => return Err(CoreError::KeyNotFound(key)),
            }
        };
        let e_t = removed.tuple_digest.exp;
        for id in path
            .iter()
            .map(|&(pid, _)| pid)
            .chain(std::iter::once(leaf_id))
        {
            let old = self.node(id).digest().exp;
            let new = self.acc.uncombine(&old, &e_t);
            self.meter.combine_ops += 1;
            let digest = self.issue_node(new, &mut src)?;
            self.set_node_digest(id, digest);
        }
        // Structural cleanup of emptied nodes.
        let mut child_id = leaf_id;
        for &(pid, ci) in path.iter().rev() {
            if self.node(child_id).entry_count() == 0 {
                let parent = self.node_mut(pid).as_internal_mut();
                parent.children.remove(ci);
                if !parent.keys.is_empty() {
                    if ci == 0 {
                        parent.keys.remove(0);
                    } else {
                        parent.keys.remove(ci - 1);
                    }
                }
                self.dealloc(child_id);
            }
            child_id = pid;
        }
        self.shrink_root();
        self.len -= 1;
        self.version += 1;
        Ok(removed.tuple)
    }

    /// Batch range delete with fresh signing (central-server path).
    pub fn delete_range(
        &mut self,
        lo: u64,
        hi: u64,
        signer: &dyn Signer,
    ) -> Result<Vec<Tuple>, CoreError> {
        self.delete_range_with_source(lo, hi, &mut SigningSource::new(signer))
    }

    /// Batch range delete — the transaction priced by equation (12):
    /// empties out interior nodes of the enveloping subtree and
    /// recomputes digests along the boundary paths up to the root.
    pub fn delete_range_with_source(
        &mut self,
        lo: u64,
        hi: u64,
        src: &mut dyn DigestSource<L>,
    ) -> Result<Vec<Tuple>, CoreError> {
        let mut removed = Vec::new();
        let root = self.root;
        let emptied = self.prune(root, lo, hi, &mut removed, src)?;
        if emptied {
            // The whole tree was emptied: reset to a single empty leaf.
            self.dealloc(root);
            let identity = self.acc.identity();
            let digest = self.issue_node(identity, src)?;
            self.root = self.alloc(Node::Leaf(LeafNode {
                entries: Vec::new(),
                digest,
            }));
            self.height = 1;
        } else {
            self.shrink_root();
        }
        self.len -= removed.len() as u64;
        if !removed.is_empty() {
            self.version += 1;
        }
        Ok(removed)
    }

    /// Recursively remove `[lo, hi]` under `id`; returns true when the
    /// node ended up empty (caller deallocates).
    fn prune(
        &mut self,
        id: NodeId,
        lo: u64,
        hi: u64,
        removed: &mut Vec<Tuple>,
        src: &mut dyn DigestSource<L>,
    ) -> Result<bool, CoreError> {
        match self.node(id) {
            Node::Leaf(_) => {
                let leaf = self.node_mut(id).as_leaf_mut();
                let before = leaf.entries.len();
                let mut kept = Vec::with_capacity(before);
                for e in leaf.entries.drain(..) {
                    if e.key() >= lo && e.key() <= hi {
                        removed.push(e.tuple);
                    } else {
                        kept.push(e);
                    }
                }
                let changed = kept.len() != before;
                leaf.entries = kept;
                let entries = self.node(id).as_leaf().entries.clone();
                if entries.is_empty() {
                    return Ok(true);
                }
                if changed {
                    let exp = self.product_of_tuples(&entries);
                    let digest = self.issue_node(exp, src)?;
                    self.set_node_digest(id, digest);
                }
                Ok(false)
            }
            Node::Internal(n) => {
                let child_ids = n.children.clone();
                let overlaps: Vec<bool> = (0..child_ids.len())
                    .map(|i| n.child_overlaps(i, lo, hi))
                    .collect();
                let mut emptied = vec![false; child_ids.len()];
                let mut any_overlap = false;
                for (i, &cid) in child_ids.iter().enumerate() {
                    if overlaps[i] {
                        any_overlap = true;
                        emptied[i] = self.prune(cid, lo, hi, removed, src)?;
                    }
                }
                // Remove emptied children (right to left to keep indices
                // stable) and their separators.
                for i in (0..child_ids.len()).rev() {
                    if emptied[i] {
                        let parent = self.node_mut(id).as_internal_mut();
                        parent.children.remove(i);
                        if !parent.keys.is_empty() {
                            if i == 0 {
                                parent.keys.remove(0);
                            } else {
                                parent.keys.remove(i - 1);
                            }
                        }
                        self.dealloc(child_ids[i]);
                    }
                }
                let children = self.node(id).as_internal().children.clone();
                if children.is_empty() {
                    return Ok(true);
                }
                if any_overlap {
                    let exp = self.product_of_children(&children);
                    let digest = self.issue_node(exp, src)?;
                    self.set_node_digest(id, digest);
                }
                Ok(false)
            }
        }
    }

    fn shrink_root(&mut self) {
        while let Node::Internal(n) = self.node(self.root) {
            if n.children.len() == 1 {
                let child = n.children[0];
                let old = self.root;
                self.root = child;
                self.dealloc(old);
                self.height -= 1;
            } else {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection & invariants
    // ------------------------------------------------------------------

    /// Shape statistics.
    pub fn stats(&self) -> VbTreeStats {
        let mut nodes = 0usize;
        let mut leaves = 0usize;
        let mut digest_bytes = 0usize;
        for n in self.nodes.iter().flatten() {
            let n = n.as_ref();
            nodes += 1;
            digest_bytes += n.digest().wire_len();
            match n {
                Node::Leaf(l) => {
                    leaves += 1;
                    for e in &l.entries {
                        digest_bytes += e.tuple_digest.wire_len();
                        digest_bytes += e.attr_digests.iter().map(|d| d.wire_len()).sum::<usize>();
                    }
                }
                Node::Internal(_) => {}
            }
        }
        VbTreeStats {
            height: self.height,
            nodes,
            leaves,
            tuples: self.len,
            fanout: self.config.fanout(),
            logical_bytes: nodes * self.config.geometry.block_size,
            digest_bytes,
        }
    }

    /// Exhaustive invariant check (tests and property tests):
    /// key order, separator correctness, uniform depth, digest
    /// consistency, and (optionally) every signature.
    pub fn check_integrity(&self, verifier: Option<&dyn SigVerifier>) -> Result<(), CoreError> {
        let mut count = 0u64;
        let depth = self.check_node(self.root, None, None, verifier, &mut count)?;
        if depth != self.height {
            return Err(CoreError::InvariantViolation(format!(
                "height mismatch: computed {depth}, stored {}",
                self.height
            )));
        }
        if count != self.len {
            return Err(CoreError::InvariantViolation(format!(
                "tuple count mismatch: computed {count}, stored {}",
                self.len
            )));
        }
        Ok(())
    }

    fn check_node(
        &self,
        id: NodeId,
        lo: Option<u64>,
        hi: Option<u64>,
        verifier: Option<&dyn SigVerifier>,
        count: &mut u64,
    ) -> Result<u32, CoreError> {
        let viol = |m: String| Err(CoreError::InvariantViolation(m));
        let node = self.node(id);
        if let Some(v) = verifier {
            if !self.acc.verify_digest(v, node.digest()) {
                return viol(format!("node {id}: bad digest signature"));
            }
        }
        match node {
            Node::Leaf(n) => {
                let mut expected = self.acc.identity();
                let mut prev: Option<u64> = None;
                for e in &n.entries {
                    let k = e.key();
                    if let Some(p) = prev {
                        if k <= p {
                            return viol(format!("leaf {id}: keys out of order ({p} !< {k})"));
                        }
                    }
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return viol(format!("leaf {id}: key {k} outside separator bounds"));
                    }
                    prev = Some(k);
                    // Recompute the tuple digest from raw values.
                    let mut te = self.acc.identity();
                    for (col, val) in e.tuple.values.iter().enumerate() {
                        let input = self.schema.attribute_digest_input(col, k, val);
                        let ea = self.acc.exp_from_bytes(&input);
                        if ea != e.attr_digests[col].exp {
                            return viol(format!(
                                "leaf {id}: attr digest mismatch key {k} col {col}"
                            ));
                        }
                        te = self.acc.combine(&te, &ea);
                    }
                    if te != e.tuple_digest.exp {
                        return viol(format!("leaf {id}: tuple digest mismatch key {k}"));
                    }
                    if let Some(v) = verifier {
                        if !self.acc.verify_digest(v, &e.tuple_digest) {
                            return viol(format!("leaf {id}: bad tuple signature key {k}"));
                        }
                        for d in &e.attr_digests {
                            if !self.acc.verify_digest(v, d) {
                                return viol(format!("leaf {id}: bad attr signature key {k}"));
                            }
                        }
                    }
                    expected = self.acc.combine(&expected, &e.tuple_digest.exp);
                    *count += 1;
                }
                if expected != n.digest.exp {
                    return viol(format!("leaf {id}: node digest mismatch"));
                }
                Ok(1)
            }
            Node::Internal(n) => {
                if n.children.len() != n.keys.len() + 1 {
                    return viol(format!("internal {id}: arity mismatch"));
                }
                if n.children.is_empty() {
                    return viol(format!("internal {id}: no children"));
                }
                let mut expected = self.acc.identity();
                let mut depth: Option<u32> = None;
                for (i, &c) in n.children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(n.keys[i - 1]) };
                    let chi = if i == n.keys.len() {
                        hi
                    } else {
                        Some(n.keys[i])
                    };
                    if let (Some(a), Some(b)) = (clo, chi) {
                        if a >= b {
                            return viol(format!("internal {id}: separators not increasing"));
                        }
                    }
                    let d = self.check_node(c, clo, chi, verifier, count)?;
                    if let Some(prev) = depth {
                        if prev != d {
                            return viol(format!("internal {id}: ragged depth"));
                        }
                    }
                    depth = Some(d);
                    expected = self.acc.combine(&expected, &self.node(c).digest().exp);
                }
                if expected != n.digest.exp {
                    return viol(format!("internal {id}: node digest mismatch"));
                }
                Ok(depth.unwrap() + 1)
            }
        }
    }
}
