//! VB-tree node types (Figure 3 of the paper).
//!
//! * Leaf nodes hold `(key, tuple, D_T)` entries: the tuple, its signed
//!   per-attribute digests (formula (1)) and its signed tuple digest
//!   (formula (2)).
//! * Internal nodes hold separator keys and child pointers; each child's
//!   signed digest (formula (3)) lives with the pointer.
//!
//! Nodes live in an arena ([`crate::tree::VbTree`]) and refer to each
//! other by [`NodeId`].

use vbx_crypto::accum::SignedDigest;
use vbx_storage::Tuple;

/// Arena index of a node.
pub type NodeId = usize;

/// A leaf entry: one tuple plus its digest materialisation.
#[derive(Clone, Debug)]
pub struct TupleEntry<const L: usize> {
    /// The tuple itself (the VB-tree is a primary, clustered index).
    pub tuple: Tuple,
    /// Signed digest per attribute, in schema column order
    /// (formula (1)); these are what `D_P` entries are drawn from.
    pub attr_digests: Vec<SignedDigest<L>>,
    /// Signed tuple digest (formula (2)): exponent is the product of the
    /// attribute exponents; these are what leaf-level `D_S` entries are
    /// drawn from.
    pub tuple_digest: SignedDigest<L>,
}

impl<const L: usize> TupleEntry<L> {
    /// The primary key.
    pub fn key(&self) -> u64 {
        self.tuple.key
    }
}

/// A leaf node.
#[derive(Clone, Debug)]
pub struct LeafNode<const L: usize> {
    /// Entries sorted by key.
    pub entries: Vec<TupleEntry<L>>,
    /// Signed node digest (formula (3)): exponent is the product of the
    /// tuple exponents in this leaf.
    pub digest: SignedDigest<L>,
}

/// An internal node.
#[derive(Clone, Debug)]
pub struct InternalNode<const L: usize> {
    /// Separator keys: `keys[i]` is the smallest key reachable under
    /// `children[i + 1]`; `children[i]` covers keys `< keys[i]`.
    pub keys: Vec<u64>,
    /// Child node ids (`keys.len() + 1` of them).
    pub children: Vec<NodeId>,
    /// Signed node digest: exponent is the product of the child
    /// exponents, which by induction equals the product of all tuple
    /// exponents under this node.
    pub digest: SignedDigest<L>,
}

impl<const L: usize> InternalNode<L> {
    /// Index of the child that covers `key`.
    pub fn child_index(&self, key: u64) -> usize {
        self.keys.partition_point(|&s| s <= key)
    }

    /// The inclusive key interval `[lo, hi]` intersected with child `i`'s
    /// coverage; `None` when they do not overlap.
    pub fn child_overlaps(&self, i: usize, lo: u64, hi: u64) -> bool {
        let child_lo = if i == 0 { None } else { Some(self.keys[i - 1]) };
        let child_hi_excl = self.keys.get(i).copied();
        let starts_ok = child_hi_excl.is_none_or(|h| lo < h);
        let ends_ok = child_lo.is_none_or(|l| hi >= l);
        starts_ok && ends_ok
    }
}

/// A VB-tree node.
#[derive(Clone, Debug)]
pub enum Node<const L: usize> {
    /// Leaf level.
    Leaf(LeafNode<L>),
    /// Internal level.
    Internal(InternalNode<L>),
}

impl<const L: usize> Node<L> {
    /// The node's signed digest.
    pub fn digest(&self) -> &SignedDigest<L> {
        match self {
            Node::Leaf(n) => &n.digest,
            Node::Internal(n) => &n.digest,
        }
    }

    /// Replace the node's signed digest.
    pub fn set_digest(&mut self, d: SignedDigest<L>) {
        match self {
            Node::Leaf(n) => n.digest = d,
            Node::Internal(n) => n.digest = d,
        }
    }

    /// Number of entries (tuples or children).
    pub fn entry_count(&self) -> usize {
        match self {
            Node::Leaf(n) => n.entries.len(),
            Node::Internal(n) => n.children.len(),
        }
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Borrow as leaf (panics on internal).
    pub fn as_leaf(&self) -> &LeafNode<L> {
        match self {
            Node::Leaf(n) => n,
            Node::Internal(_) => panic!("expected leaf"),
        }
    }

    /// Borrow as internal (panics on leaf).
    pub fn as_internal(&self) -> &InternalNode<L> {
        match self {
            Node::Internal(n) => n,
            Node::Leaf(_) => panic!("expected internal"),
        }
    }

    /// Mutable leaf access.
    pub fn as_leaf_mut(&mut self) -> &mut LeafNode<L> {
        match self {
            Node::Leaf(n) => n,
            Node::Internal(_) => panic!("expected leaf"),
        }
    }

    /// Mutable internal access.
    pub fn as_internal_mut(&mut self) -> &mut InternalNode<L> {
        match self {
            Node::Internal(n) => n,
            Node::Leaf(_) => panic!("expected internal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_crypto::accum::DigestRole;
    use vbx_crypto::Signature;
    use vbx_mathx::Uint;

    fn dummy_digest() -> SignedDigest<4> {
        SignedDigest {
            exp: Uint::from_u64(3),
            role: DigestRole::Node,
            sig: Signature(vec![0; 4]),
        }
    }

    fn internal(keys: Vec<u64>) -> InternalNode<4> {
        let children = (0..=keys.len()).collect();
        InternalNode {
            keys,
            children,
            digest: dummy_digest(),
        }
    }

    #[test]
    fn child_index_routing() {
        let n = internal(vec![10, 20, 30]);
        assert_eq!(n.child_index(0), 0);
        assert_eq!(n.child_index(9), 0);
        assert_eq!(n.child_index(10), 1); // separator key belongs right
        assert_eq!(n.child_index(19), 1);
        assert_eq!(n.child_index(20), 2);
        assert_eq!(n.child_index(35), 3);
    }

    #[test]
    fn child_overlap_ranges() {
        let n = internal(vec![10, 20]);
        // child 0 covers (..10), child 1 [10,20), child 2 [20..)
        assert!(n.child_overlaps(0, 0, 5));
        assert!(n.child_overlaps(0, 9, 100));
        assert!(!n.child_overlaps(0, 10, 100));
        assert!(n.child_overlaps(1, 10, 10));
        assert!(!n.child_overlaps(1, 20, 25));
        assert!(n.child_overlaps(2, 20, 25));
        assert!(!n.child_overlaps(2, 0, 19));
        // full-range query overlaps every child
        for i in 0..3 {
            assert!(n.child_overlaps(i, 0, u64::MAX));
        }
    }
}
