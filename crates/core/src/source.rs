//! Where signed digests come from during tree mutation.
//!
//! Only the central DBMS holds the private key (Section 3.4: "update
//! operations have to be channeled back to the central database server
//! … only the central server possesses the private key for signing new
//! digests"). Yet every edge replica's VB-tree must end up with the same
//! signed digests. [`DigestSource`] abstracts the difference:
//!
//! * [`SigningSource`] — the central server: signs fresh digests;
//! * [`Capture`] — the central server while *recording* an update
//!   delta: signs and remembers every digest in issue order;
//! * [`ReplaySource`] — an edge server applying a received delta: pops
//!   the pre-signed digests in the same deterministic order, checking
//!   that the locally recomputed exponents match (any divergence means
//!   a corrupt replica or a forged delta).

use crate::CoreError;
use std::collections::VecDeque;
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::Signer;
use vbx_mathx::Uint;

/// Issues signed digests during tree mutations.
pub trait DigestSource<const L: usize> {
    /// Produce the signed digest for `exp` under `role`.
    fn issue(
        &mut self,
        acc: &Accumulator<L>,
        role: DigestRole,
        exp: &Uint<L>,
    ) -> Result<SignedDigest<L>, CoreError>;

    /// Key version of the digests this source issues.
    fn key_version(&self) -> u32;

    /// Whether an issue counts as a signature operation in the cost
    /// meter (replay and deferred sources do not sign).
    fn counts_as_sign(&self) -> bool {
        true
    }
}

/// Signs fresh digests with the central server's key.
pub struct SigningSource<'a> {
    signer: &'a dyn Signer,
}

impl<'a> SigningSource<'a> {
    /// Wrap a signer.
    pub fn new(signer: &'a dyn Signer) -> Self {
        Self { signer }
    }
}

impl<const L: usize> DigestSource<L> for SigningSource<'_> {
    fn issue(
        &mut self,
        acc: &Accumulator<L>,
        role: DigestRole,
        exp: &Uint<L>,
    ) -> Result<SignedDigest<L>, CoreError> {
        Ok(acc.sign_digest(self.signer, role, exp))
    }

    fn key_version(&self) -> u32 {
        self.signer.key_version()
    }
}

/// Signs and records every issued digest, in order — producing the
/// payload of an update delta for edge replicas.
pub struct Capture<'a, const L: usize> {
    signer: &'a dyn Signer,
    /// Digests in issue order.
    pub captured: Vec<SignedDigest<L>>,
}

impl<'a, const L: usize> Capture<'a, L> {
    /// Wrap a signer, capturing issued digests.
    pub fn new(signer: &'a dyn Signer) -> Self {
        Self {
            signer,
            captured: Vec::new(),
        }
    }

    /// Consume and return the captured digests.
    pub fn into_digests(self) -> Vec<SignedDigest<L>> {
        self.captured
    }
}

impl<const L: usize> DigestSource<L> for Capture<'_, L> {
    fn issue(
        &mut self,
        acc: &Accumulator<L>,
        role: DigestRole,
        exp: &Uint<L>,
    ) -> Result<SignedDigest<L>, CoreError> {
        let d = acc.sign_digest(self.signer, role, exp);
        self.captured.push(d.clone());
        Ok(d)
    }

    fn key_version(&self) -> u32 {
        self.signer.key_version()
    }
}

/// Replays pre-signed digests on an edge replica, checking that the
/// locally computed exponent and role match the shipped digest.
pub struct ReplaySource<const L: usize> {
    digests: VecDeque<SignedDigest<L>>,
    key_version: u32,
}

impl<const L: usize> ReplaySource<L> {
    /// Create from a delta's digest list and the key version it was
    /// signed under.
    pub fn new(digests: Vec<SignedDigest<L>>, key_version: u32) -> Self {
        Self {
            digests: digests.into(),
            key_version,
        }
    }

    /// Digests not yet consumed (must be 0 after a successful replay).
    pub fn remaining(&self) -> usize {
        self.digests.len()
    }
}

impl<const L: usize> DigestSource<L> for ReplaySource<L> {
    fn counts_as_sign(&self) -> bool {
        false // replicas replay signatures; they never create them
    }

    fn issue(
        &mut self,
        _acc: &Accumulator<L>,
        role: DigestRole,
        exp: &Uint<L>,
    ) -> Result<SignedDigest<L>, CoreError> {
        let d = self.digests.pop_front().ok_or_else(|| {
            CoreError::ReplicaDivergence("delta exhausted: replica issued more digests".into())
        })?;
        if d.role != role {
            return Err(CoreError::ReplicaDivergence(format!(
                "delta role {:?} != local {:?}",
                d.role, role
            )));
        }
        if &d.exp != exp {
            return Err(CoreError::ReplicaDivergence(
                "delta exponent differs from locally recomputed digest".into(),
            ));
        }
        Ok(d)
    }

    fn key_version(&self) -> u32 {
        self.key_version
    }
}

/// Defers signing entirely: issues digests with **empty** signatures so
/// that a batch of structural updates can be applied first and every
/// dirty digest signed once in a final sweep — the signature-amortised
/// batch insert of [`crate::VbTree::insert_batch`].
pub struct DeferredSource {
    key_version: u32,
}

impl DeferredSource {
    /// Create a deferred source stamping the given key version.
    pub fn new(key_version: u32) -> Self {
        Self { key_version }
    }
}

impl<const L: usize> DigestSource<L> for DeferredSource {
    fn counts_as_sign(&self) -> bool {
        false // signing happens in the final sweep
    }

    fn issue(
        &mut self,
        _acc: &Accumulator<L>,
        role: DigestRole,
        exp: &Uint<L>,
    ) -> Result<SignedDigest<L>, CoreError> {
        Ok(SignedDigest {
            exp: *exp,
            role,
            sig: vbx_crypto::Signature(Vec::new()),
        })
    }

    fn key_version(&self) -> u32 {
        self.key_version
    }
}
