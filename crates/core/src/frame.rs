//! `VBX5` — the framed transport layer that puts the VBX protocol on
//! sockets.
//!
//! Every connection in the networked deployment exchanges **frames**:
//!
//! ```text
//! | len u32 | crc32 u32 | kind u8 | payload … |
//! ```
//!
//! `len` counts the kind byte plus the payload; the CRC-32 (same
//! polynomial as the durability WAL) covers the same bytes, so a bit
//! flip anywhere in the body — including the kind tag — surfaces as a
//! checksum error before the payload is ever parsed. Frames carry the
//! existing envelopes verbatim (`VBX2` responses, `VBX3` batches,
//! `VBX4` compact VOs, `VBB1` bundles, `VBX6` single-op deltas) plus
//! small request/control payloads defined here: range/SQL/compact
//! queries, subscribe-from-cursor, heartbeat, and errors. The frame
//! layer authenticates nothing — transport integrity only; all
//! authentication stays in [`crate::verify`] on the decoded envelopes.
//!
//! [`FrameBuffer`] is the incremental decoder both transports share: a
//! connection appends whatever bytes the socket produced and pulls zero
//! or more complete frames out, so partial and interleaved reads are
//! handled in one place. Structurally hostile input — truncation,
//! length lies beyond [`MAX_FRAME_LEN`], checksum flips, unknown kinds
//! — returns [`CoreError::Wire`] and never panics.
//!
//! This module also hosts the shared length-prefix helpers
//! ([`put_block16`]/[`get_block16`], [`put_sig`]/[`get_sig`],
//! [`put_str`]/[`get_str`]) that the `VBX2`–`VBX4` codecs in
//! [`crate::wire`] previously each re-implemented inline.

use crate::verify::FreshnessStamp;
use crate::vo::RangeQuery;
use crate::wire::{get_stamp, put_stamp};
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::Signature;
use vbx_storage::crc32;

/// Hard upper bound on a frame body (kind + payload). A `len` field
/// above this is a length lie: the decoder rejects it instead of
/// allocating, so a hostile peer cannot balloon a server's memory with
/// an 8-byte header.
pub const MAX_FRAME_LEN: usize = 1 << 26; // 64 MiB — bundles included

/// Bytes of the fixed frame header (`len` + `crc32`).
pub const FRAME_HEADER_LEN: usize = 8;

// ---------------------------------------------------------------------
// Shared length-prefix helpers (the one framing vocabulary all codecs
// use: u16-prefixed binary blocks, u32-prefixed UTF-8 strings).
// ---------------------------------------------------------------------

/// Append a `u16` length prefix followed by `bytes`.
///
/// The framing used for every signature on the wire. Panics in debug
/// builds if `bytes` exceeds `u16::MAX` — signatures and short blocks
/// only.
pub fn put_block16(out: &mut Vec<u8>, bytes: &[u8]) {
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.put_u16(bytes.len() as u16);
    out.extend_from_slice(bytes);
}

/// Decode a [`put_block16`] block, advancing `buf`. `what` names the
/// field in the error message.
pub fn get_block16<'a>(buf: &mut &'a [u8], what: &str) -> Result<&'a [u8], CoreError> {
    if buf.remaining() < 2 {
        return Err(CoreError::Wire(format!("{what} length truncated")));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(CoreError::Wire(format!("{what} truncated")));
    }
    let block = &buf[..len];
    buf.advance(len);
    Ok(block)
}

/// Append a signature as a [`put_block16`] block.
pub fn put_sig(out: &mut Vec<u8>, sig: &Signature) {
    put_block16(out, sig.as_bytes());
}

/// Decode a signature written by [`put_sig`].
pub fn get_sig(buf: &mut &[u8], what: &str) -> Result<Signature, CoreError> {
    Ok(Signature(get_block16(buf, what)?.to_vec()))
}

/// Append a `u32` length prefix followed by the UTF-8 bytes of `s` —
/// the framing used for table names and SQL text.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Decode a [`put_str`] string, advancing `buf`.
pub fn get_str(buf: &mut &[u8], what: &str) -> Result<String, CoreError> {
    if buf.remaining() < 4 {
        return Err(CoreError::Wire(format!("{what} length truncated")));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(CoreError::Wire(format!("{what} truncated")));
    }
    let s = core::str::from_utf8(&buf[..len])
        .map_err(|_| CoreError::Wire(format!("{what} not UTF-8")))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Message kind tag of a `VBX5` frame. Requests live in `0x1x`,
/// responses and subscription-stream items in `0x2x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Liveness probe (either direction).
    Ping = 0x01,
    /// Reply to [`Ping`](Self::Ping), carrying the peer's applied seq.
    Pong = 0x02,
    /// Range query against a table.
    RangeReq = 0x10,
    /// SQL query (the edge plans it; the client re-plans to verify).
    SqlReq = 0x11,
    /// Multi-range compact (`VBX4`) query.
    CompactReq = 0x12,
    /// Request the central's provisioning bundle (`VBB1`).
    BundleReq = 0x13,
    /// Subscribe to the delta stream from a cursor.
    Subscribe = 0x14,
    /// Pull up to `max` entries from the subscription cursor.
    PollDeltas = 0x15,
    /// Ask the central for a freshly signed stamp.
    HeartbeatReq = 0x16,
    /// Request chunk `index` of a table's verified sync stream.
    ChunkRequest = 0x17,
    /// A `VBX2` query response, verbatim.
    QueryResp = 0x20,
    /// A `VBX4` compact response, verbatim.
    CompactResp = 0x21,
    /// A `VBB1` edge bundle, verbatim.
    BundleResp = 0x22,
    /// A `VBX6` single signed delta, verbatim.
    DeltaOp = 0x23,
    /// A `VBX3` group-commit batch, verbatim.
    DeltaBatch = 0x24,
    /// Advisory: `count` deltas from `start_seq` target other tables.
    SkipRange = 0x25,
    /// A bare owner freshness stamp (heartbeat reply).
    Stamp = 0x26,
    /// Subscription accepted; reports the log head and oldest seq.
    SubAck = 0x27,
    /// Generic acknowledgement carrying the receiver's applied seq.
    Ack = 0x28,
    /// One `VBC1` sync chunk, verbatim.
    Chunk = 0x29,
    /// Sync stream complete: chunk count plus the log head to subscribe
    /// from for catch-up.
    RestoreDone = 0x2A,
    /// A `VBX7` atomic multi-table txn, verbatim.
    DeltaTxn = 0x2B,
    /// Error reply; the request that caused it got no other answer.
    Error = 0x3F,
}

impl FrameKind {
    /// Decode a kind tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0x01 => Self::Ping,
            0x02 => Self::Pong,
            0x10 => Self::RangeReq,
            0x11 => Self::SqlReq,
            0x12 => Self::CompactReq,
            0x13 => Self::BundleReq,
            0x14 => Self::Subscribe,
            0x15 => Self::PollDeltas,
            0x16 => Self::HeartbeatReq,
            0x17 => Self::ChunkRequest,
            0x20 => Self::QueryResp,
            0x21 => Self::CompactResp,
            0x22 => Self::BundleResp,
            0x23 => Self::DeltaOp,
            0x24 => Self::DeltaBatch,
            0x25 => Self::SkipRange,
            0x26 => Self::Stamp,
            0x27 => Self::SubAck,
            0x28 => Self::Ack,
            0x29 => Self::Chunk,
            0x2A => Self::RestoreDone,
            0x2B => Self::DeltaTxn,
            0x3F => Self::Error,
            _ => return None,
        })
    }
}

/// One framed message: a kind tag plus its payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Kind-specific payload (often a whole `VBX2`–`VBX4` envelope).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Exact size of [`encode`](Self::encode)'s output.
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN + 1 + self.payload.len()
    }

    /// Serialize `len | crc32 | kind | payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Serialize into an existing buffer (batching frames on one send).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let body_len = 1 + self.payload.len();
        debug_assert!(body_len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        out.put_u32(body_len as u32);
        let crc_at = out.len();
        out.put_u32(0);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out[crc_at + 4..]);
        out[crc_at..crc_at + 4].copy_from_slice(&crc.to_be_bytes());
    }

    /// Strict one-shot decode: exactly one frame, nothing trailing.
    /// Truncation, length lies, checksum flips, and unknown kinds all
    /// error; nothing panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, CoreError> {
        let mut fb = FrameBuffer::new();
        fb.extend(bytes);
        let frame = fb
            .try_frame()?
            .ok_or_else(|| CoreError::Wire("frame truncated".into()))?;
        if fb.pending() != 0 {
            return Err(CoreError::Wire("trailing bytes after frame".into()));
        }
        Ok(frame)
    }
}

/// Incremental `VBX5` decoder shared by every transport: append bytes
/// as the socket produces them, pull complete frames out. Handles
/// partial and interleaved reads — a frame split across any number of
/// `extend` calls decodes identically to one contiguous buffer.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes read off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; an error means the stream is
    /// structurally corrupt (empty frame, length lie, checksum
    /// mismatch, unknown kind) and the connection should be dropped —
    /// after an error the buffer's contents are unspecified.
    pub fn try_frame(&mut self) -> Result<Option<Frame>, CoreError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let body_len = u32::from_be_bytes(avail[0..4].try_into().unwrap()) as usize;
        if body_len == 0 {
            return Err(CoreError::Wire("empty frame".into()));
        }
        if body_len > MAX_FRAME_LEN {
            return Err(CoreError::Wire(format!(
                "frame length {body_len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
            )));
        }
        if avail.len() < FRAME_HEADER_LEN + body_len {
            self.compact();
            return Ok(None);
        }
        let want_crc = u32::from_be_bytes(avail[4..8].try_into().unwrap());
        let body = &avail[FRAME_HEADER_LEN..FRAME_HEADER_LEN + body_len];
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return Err(CoreError::Wire(format!(
                "frame checksum mismatch (want {want_crc:#010x}, got {got_crc:#010x})"
            )));
        }
        let kind = FrameKind::from_tag(body[0])
            .ok_or_else(|| CoreError::Wire(format!("unknown frame kind {:#04x}", body[0])))?;
        let payload = body[1..].to_vec();
        self.pos += FRAME_HEADER_LEN + body_len;
        self.compact();
        Ok(Some(Frame { kind, payload }))
    }

    /// Drop consumed bytes once they dominate the buffer, keeping the
    /// amortized cost of long-lived connections O(bytes received).
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------

/// Why a request failed, as reported in an [`NetMsg::Error`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The named table is not served here.
    UnknownTable = 1,
    /// The request payload did not parse or was semantically invalid.
    BadRequest = 2,
    /// The subscription cursor fell behind the bounded queue/retention
    /// window; the subscriber must re-bootstrap from a bundle.
    Lagging = 3,
    /// A delta arrived out of order (expected vs got in the message).
    OutOfOrder = 4,
    /// The scheme layer rejected the operation.
    Scheme = 5,
    /// Anything else; the message says what.
    Internal = 6,
}

impl ErrorCode {
    /// Decode an error-code tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => Self::UnknownTable,
            2 => Self::BadRequest,
            3 => Self::Lagging,
            4 => Self::OutOfOrder,
            5 => Self::Scheme,
            6 => Self::Internal,
            _ => return None,
        })
    }
}

/// A decoded `VBX5` message. Envelope-carrying variants keep their
/// payload as the verbatim inner encoding (`VBX2`/`VBX3`/`VBX4`/
/// `VBB1`/`VBX6` bytes) so the frame layer stays independent of the
/// digest width `L`; decode them with the matching `wire`/bundle
/// decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    /// Liveness probe.
    Ping,
    /// Liveness reply with the peer's applied sequence.
    Pong {
        /// Highest delta sequence the peer has applied.
        applied_seq: u64,
    },
    /// Range query against `table`.
    RangeReq {
        /// Target table.
        table: String,
        /// Key range + projection.
        query: RangeQuery,
    },
    /// SQL text for the edge to plan and execute.
    SqlReq {
        /// The SELECT statement.
        sql: String,
    },
    /// Multi-range compact (`VBX4`) query against `table`.
    CompactReq {
        /// Target table.
        table: String,
        /// The ranges, merged into one op stream by the edge.
        queries: Vec<RangeQuery>,
        /// Ask for a condensed (aggregated) signature sweep.
        aggregate: bool,
    },
    /// Request the provisioning bundle.
    BundleReq,
    /// Subscribe to the delta stream starting at `cursor`.
    Subscribe {
        /// First sequence number the subscriber still needs.
        cursor: u64,
    },
    /// Pull up to `max` entries from the subscription cursor.
    PollDeltas {
        /// Entry budget for this poll.
        max: u32,
    },
    /// Ask for a freshly signed owner stamp.
    HeartbeatReq,
    /// Request chunk `index` of `table`'s verified sync stream.
    ChunkRequest {
        /// Table to restore.
        table: String,
        /// Zero-based chunk index.
        index: u32,
    },
    /// A `VBX2` response (decode with [`crate::wire::decode_response`]).
    QueryResp(
        /// Verbatim `VBX2` bytes.
        Vec<u8>,
    ),
    /// A `VBX4` response
    /// (decode with [`crate::wire::decode_compact_response`]).
    CompactResp(
        /// Verbatim `VBX4` bytes.
        Vec<u8>,
    ),
    /// A `VBB1` edge bundle.
    BundleResp(
        /// Verbatim `VBB1` bytes.
        Vec<u8>,
    ),
    /// One signed delta
    /// (decode with [`crate::wire::decode_signed_delta`]).
    DeltaOp(
        /// Verbatim `VBX6` bytes.
        Vec<u8>,
    ),
    /// A group-commit batch
    /// (decode with [`crate::wire::decode_delta_batch`]).
    DeltaBatch(
        /// Verbatim `VBX3` bytes.
        Vec<u8>,
    ),
    /// An atomic multi-table txn
    /// (decode with [`crate::wire::decode_txn_batch`]).
    DeltaTxn(
        /// Verbatim `VBX7` bytes.
        Vec<u8>,
    ),
    /// `count` sequence numbers from `start_seq` carry no deltas for
    /// the receiver's tables; advance the cursor without applying.
    SkipRange {
        /// First skipped sequence.
        start_seq: u64,
        /// How many sequences to skip.
        count: u64,
    },
    /// A bare owner freshness stamp.
    Stamp {
        /// The stamp, absent when the owner has not signed one yet.
        stamp: Option<FreshnessStamp>,
    },
    /// Subscription accepted.
    SubAck {
        /// The log's next (head) sequence.
        head: u64,
        /// Oldest sequence still retained.
        oldest: u64,
    },
    /// Acknowledgement carrying the receiver's applied sequence.
    Ack {
        /// Highest delta sequence applied after this message.
        applied_seq: u64,
    },
    /// One sync chunk (feed to a scheme's
    /// [`StoreRestorer`](crate::chunks::StoreRestorer)).
    Chunk(
        /// Verbatim `VBC1` bytes.
        Vec<u8>,
    ),
    /// The requested chunk index is past the end: the sync stream is
    /// complete.
    RestoreDone {
        /// Chunks the stream comprised.
        chunks: u32,
        /// The source's log head (`next_seq`) — subscribe from here to
        /// catch up on anything committed after the stream.
        head: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_range_query(out: &mut Vec<u8>, q: &RangeQuery) {
    out.put_u64(q.lo);
    out.put_u64(q.hi);
    match &q.projection {
        None => out.push(0),
        Some(cols) => {
            out.push(1);
            out.put_u16(cols.len() as u16);
            for c in cols {
                out.put_u32(*c as u32);
            }
        }
    }
}

fn get_range_query(buf: &mut &[u8]) -> Result<RangeQuery, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 17 {
        return Err(corrupt("range query truncated"));
    }
    let lo = buf.get_u64();
    let hi = buf.get_u64();
    let projection = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 2 {
                return Err(corrupt("projection truncated"));
            }
            let n = buf.get_u16() as usize;
            if buf.remaining() < n * 4 {
                return Err(corrupt("projection truncated"));
            }
            Some((0..n).map(|_| buf.get_u32() as usize).collect())
        }
        _ => return Err(corrupt("bad projection tag")),
    };
    Ok(RangeQuery { lo, hi, projection })
}

impl NetMsg {
    /// The frame kind this message travels under.
    pub fn kind(&self) -> FrameKind {
        match self {
            NetMsg::Ping => FrameKind::Ping,
            NetMsg::Pong { .. } => FrameKind::Pong,
            NetMsg::RangeReq { .. } => FrameKind::RangeReq,
            NetMsg::SqlReq { .. } => FrameKind::SqlReq,
            NetMsg::CompactReq { .. } => FrameKind::CompactReq,
            NetMsg::BundleReq => FrameKind::BundleReq,
            NetMsg::Subscribe { .. } => FrameKind::Subscribe,
            NetMsg::PollDeltas { .. } => FrameKind::PollDeltas,
            NetMsg::HeartbeatReq => FrameKind::HeartbeatReq,
            NetMsg::ChunkRequest { .. } => FrameKind::ChunkRequest,
            NetMsg::QueryResp(_) => FrameKind::QueryResp,
            NetMsg::CompactResp(_) => FrameKind::CompactResp,
            NetMsg::BundleResp(_) => FrameKind::BundleResp,
            NetMsg::DeltaOp(_) => FrameKind::DeltaOp,
            NetMsg::DeltaBatch(_) => FrameKind::DeltaBatch,
            NetMsg::DeltaTxn(_) => FrameKind::DeltaTxn,
            NetMsg::SkipRange { .. } => FrameKind::SkipRange,
            NetMsg::Stamp { .. } => FrameKind::Stamp,
            NetMsg::SubAck { .. } => FrameKind::SubAck,
            NetMsg::Ack { .. } => FrameKind::Ack,
            NetMsg::Chunk(_) => FrameKind::Chunk,
            NetMsg::RestoreDone { .. } => FrameKind::RestoreDone,
            NetMsg::Error { .. } => FrameKind::Error,
        }
    }

    /// Encode into a [`Frame`].
    pub fn to_frame(&self) -> Frame {
        let mut payload = Vec::new();
        match self {
            NetMsg::Ping | NetMsg::BundleReq | NetMsg::HeartbeatReq => {}
            NetMsg::Pong { applied_seq } | NetMsg::Ack { applied_seq } => {
                payload.put_u64(*applied_seq);
            }
            NetMsg::RangeReq { table, query } => {
                put_str(&mut payload, table);
                put_range_query(&mut payload, query);
            }
            NetMsg::SqlReq { sql } => put_str(&mut payload, sql),
            NetMsg::CompactReq {
                table,
                queries,
                aggregate,
            } => {
                put_str(&mut payload, table);
                payload.push(u8::from(*aggregate));
                payload.put_u16(queries.len() as u16);
                for q in queries {
                    put_range_query(&mut payload, q);
                }
            }
            NetMsg::Subscribe { cursor } => payload.put_u64(*cursor),
            NetMsg::PollDeltas { max } => payload.put_u32(*max),
            NetMsg::ChunkRequest { table, index } => {
                put_str(&mut payload, table);
                payload.put_u32(*index);
            }
            NetMsg::QueryResp(bytes)
            | NetMsg::CompactResp(bytes)
            | NetMsg::BundleResp(bytes)
            | NetMsg::DeltaOp(bytes)
            | NetMsg::DeltaBatch(bytes)
            | NetMsg::DeltaTxn(bytes)
            | NetMsg::Chunk(bytes) => payload.extend_from_slice(bytes),
            NetMsg::RestoreDone { chunks, head } => {
                payload.put_u32(*chunks);
                payload.put_u64(*head);
            }
            NetMsg::SkipRange { start_seq, count } => {
                payload.put_u64(*start_seq);
                payload.put_u64(*count);
            }
            NetMsg::Stamp { stamp } => put_stamp(&mut payload, stamp.as_ref()),
            NetMsg::SubAck { head, oldest } => {
                payload.put_u64(*head);
                payload.put_u64(*oldest);
            }
            NetMsg::Error { code, message } => {
                payload.push(*code as u8);
                put_str(&mut payload, message);
            }
        }
        Frame {
            kind: self.kind(),
            payload,
        }
    }

    /// Decode a frame's payload into a typed message. Hostile payloads
    /// error; envelope-carrying kinds are passed through verbatim (the
    /// inner decoder validates them).
    pub fn from_frame(frame: &Frame) -> Result<NetMsg, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        let mut buf = frame.payload.as_slice();
        let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), CoreError> {
            if buf.remaining() < n {
                return Err(CoreError::Wire(format!("{what} truncated")));
            }
            Ok(())
        };
        let msg = match frame.kind {
            FrameKind::Ping => NetMsg::Ping,
            FrameKind::Pong => {
                need(&buf, 8, "pong")?;
                NetMsg::Pong {
                    applied_seq: buf.get_u64(),
                }
            }
            FrameKind::RangeReq => {
                let table = get_str(&mut buf, "table name")?;
                let query = get_range_query(&mut buf)?;
                NetMsg::RangeReq { table, query }
            }
            FrameKind::SqlReq => NetMsg::SqlReq {
                sql: get_str(&mut buf, "sql")?,
            },
            FrameKind::CompactReq => {
                let table = get_str(&mut buf, "table name")?;
                need(&buf, 3, "compact request")?;
                let aggregate = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt("bad aggregate flag")),
                };
                let n = buf.get_u16() as usize;
                let mut queries = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    queries.push(get_range_query(&mut buf)?);
                }
                NetMsg::CompactReq {
                    table,
                    queries,
                    aggregate,
                }
            }
            FrameKind::BundleReq => NetMsg::BundleReq,
            FrameKind::Subscribe => {
                need(&buf, 8, "subscribe")?;
                NetMsg::Subscribe {
                    cursor: buf.get_u64(),
                }
            }
            FrameKind::PollDeltas => {
                need(&buf, 4, "poll")?;
                NetMsg::PollDeltas { max: buf.get_u32() }
            }
            FrameKind::HeartbeatReq => NetMsg::HeartbeatReq,
            FrameKind::ChunkRequest => {
                let table = get_str(&mut buf, "table name")?;
                need(&buf, 4, "chunk request")?;
                NetMsg::ChunkRequest {
                    table,
                    index: buf.get_u32(),
                }
            }
            FrameKind::QueryResp => return Ok(NetMsg::QueryResp(frame.payload.clone())),
            FrameKind::CompactResp => return Ok(NetMsg::CompactResp(frame.payload.clone())),
            FrameKind::BundleResp => return Ok(NetMsg::BundleResp(frame.payload.clone())),
            FrameKind::DeltaOp => return Ok(NetMsg::DeltaOp(frame.payload.clone())),
            FrameKind::DeltaBatch => return Ok(NetMsg::DeltaBatch(frame.payload.clone())),
            FrameKind::DeltaTxn => return Ok(NetMsg::DeltaTxn(frame.payload.clone())),
            FrameKind::Chunk => return Ok(NetMsg::Chunk(frame.payload.clone())),
            FrameKind::RestoreDone => {
                need(&buf, 12, "restore done")?;
                NetMsg::RestoreDone {
                    chunks: buf.get_u32(),
                    head: buf.get_u64(),
                }
            }
            FrameKind::SkipRange => {
                need(&buf, 16, "skip range")?;
                NetMsg::SkipRange {
                    start_seq: buf.get_u64(),
                    count: buf.get_u64(),
                }
            }
            FrameKind::Stamp => NetMsg::Stamp {
                stamp: get_stamp(&mut buf)?,
            },
            FrameKind::SubAck => {
                need(&buf, 16, "subscribe ack")?;
                NetMsg::SubAck {
                    head: buf.get_u64(),
                    oldest: buf.get_u64(),
                }
            }
            FrameKind::Ack => {
                need(&buf, 8, "ack")?;
                NetMsg::Ack {
                    applied_seq: buf.get_u64(),
                }
            }
            FrameKind::Error => {
                need(&buf, 1, "error code")?;
                let code =
                    ErrorCode::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad error code"))?;
                let message = get_str(&mut buf, "error message")?;
                NetMsg::Error { code, message }
            }
        };
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes in frame payload"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &NetMsg) {
        let frame = msg.to_frame();
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).expect("frame decodes");
        assert_eq!(&back, &frame);
        let typed = NetMsg::from_frame(&back).expect("payload decodes");
        assert_eq!(&typed, msg);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        let msgs = vec![
            NetMsg::Ping,
            NetMsg::Pong { applied_seq: 7 },
            NetMsg::RangeReq {
                table: "items".into(),
                query: RangeQuery {
                    lo: 10,
                    hi: 20,
                    projection: Some(vec![0, 2]),
                },
            },
            NetMsg::SqlReq {
                sql: "SELECT * FROM items WHERE k BETWEEN 1 AND 9".into(),
            },
            NetMsg::CompactReq {
                table: "items".into(),
                queries: vec![
                    RangeQuery {
                        lo: 1,
                        hi: 2,
                        projection: None,
                    },
                    RangeQuery {
                        lo: 5,
                        hi: 9,
                        projection: Some(vec![1]),
                    },
                ],
                aggregate: true,
            },
            NetMsg::BundleReq,
            NetMsg::Subscribe { cursor: 42 },
            NetMsg::PollDeltas { max: 64 },
            NetMsg::HeartbeatReq,
            NetMsg::ChunkRequest {
                table: "orders".into(),
                index: 7,
            },
            NetMsg::QueryResp(vec![1, 2, 3]),
            NetMsg::CompactResp(vec![4, 5]),
            NetMsg::BundleResp(vec![6]),
            NetMsg::DeltaOp(vec![7, 8]),
            NetMsg::DeltaBatch(vec![9]),
            NetMsg::DeltaTxn(vec![0xB7; 12]),
            NetMsg::SkipRange {
                start_seq: 3,
                count: 11,
            },
            NetMsg::Stamp {
                stamp: Some(FreshnessStamp {
                    seq: 1,
                    clock: 2,
                    key_version: 3,
                    sig: Signature(vec![0xAA; 16]),
                }),
            },
            NetMsg::Stamp { stamp: None },
            NetMsg::SubAck { head: 9, oldest: 4 },
            NetMsg::Ack { applied_seq: 12 },
            NetMsg::Chunk(vec![0xC5; 24]),
            NetMsg::RestoreDone {
                chunks: 5,
                head: 99,
            },
            NetMsg::Error {
                code: ErrorCode::Lagging,
                message: "cursor 3 below oldest 9".into(),
            },
        ];
        for m in &msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn frame_buffer_handles_split_and_interleaved_frames() {
        let a = NetMsg::Ping.to_frame();
        let b = NetMsg::SqlReq {
            sql: "SELECT * FROM t WHERE k BETWEEN 0 AND 9".into(),
        }
        .to_frame();
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());

        // Feed one byte at a time: frames must pop out exactly when
        // complete, in order.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for byte in &stream {
            fb.extend(std::slice::from_ref(byte));
            while let Some(f) = fb.try_frame().expect("clean stream never errors") {
                got.push(f);
            }
        }
        assert_eq!(got, vec![a, b]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn length_lie_and_checksum_flip_error() {
        let frame = NetMsg::Pong { applied_seq: 1 }.to_frame();
        let good = frame.encode();

        // Length lie: claim a body far beyond MAX_FRAME_LEN.
        let mut lie = good.clone();
        lie[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(Frame::decode(&lie).is_err());

        // Flip one payload bit: checksum must catch it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(Frame::decode(&flipped).is_err());

        // Flip the kind byte: still a checksum error, never a panic.
        let mut kind_flip = good;
        kind_flip[FRAME_HEADER_LEN] ^= 0xFF;
        assert!(Frame::decode(&kind_flip).is_err());
    }
}
