//! # vbx-core — the Verifiable B-tree
//!
//! The primary contribution of Pang & Tan, *Authenticating Query Results
//! in Edge Computing* (ICDE 2004): a B+-tree whose attributes, tuples and
//! nodes all carry digests signed by the trusted central DBMS, so that an
//! untrusted edge server can attach a **verification object (VO)** to
//! every query result and any client holding the public key can check
//! that
//!
//! * no attribute value was tampered with, and
//! * no spurious tuple was introduced,
//!
//! with a VO whose size is **linear in the result and independent of the
//! database size**.
//!
//! ## Quick tour
//!
//! ```
//! use vbx_core::{execute, ClientVerifier, RangeQuery, VbTree, VbTreeConfig};
//! use vbx_crypto::{rsa, Acc256, Signer};
//! use vbx_storage::workload::WorkloadSpec;
//!
//! // Central server: build and sign the VB-tree.
//! let table = WorkloadSpec::new(100, 4, 12).build();
//! let signer = rsa::fixture_keypair_512();
//! let acc = Acc256::test_default();
//! let tree = VbTree::bulk_load(&table, VbTreeConfig::with_fanout(8), acc.clone(), &signer);
//!
//! // Edge server: answer a range query with a VO.
//! let query = RangeQuery::select_all(10, 30);
//! let resp = execute(&tree, &query, None);
//!
//! // Client: verify against the public key only.
//! let client = ClientVerifier::new(&acc, table.schema());
//! let report = client.verify(signer.verifier().as_ref(), &query, &resp).unwrap();
//! assert_eq!(report.rows, 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunks;
pub mod durable;
pub mod frame;
pub mod meter;
pub mod node;
pub mod restore;
pub mod scheme;
pub mod source;
pub mod tree;
pub mod tree_codec;
pub mod verify;
pub mod vo;
pub mod wire;

pub use chunks::{StoreRestorer, SyncError, TreeChunks, DEFAULT_LEAVES_PER_CHUNK};
pub use durable::{
    decode_wal_record, encode_wal_commit_batch, encode_wal_commit_op, encode_wal_commit_txn,
    encode_wal_heartbeat, DurableScheme, WalRecord,
};
pub use frame::{ErrorCode, Frame, FrameBuffer, FrameKind, NetMsg, MAX_FRAME_LEN};
pub use meter::CostMeter;
pub use restore::Restorer;
pub use scheme::{
    AuthScheme, DeltaBatch, SignedDelta, TamperMode, TxnBatch, UpdateOp, VbScheme, VbSchemeError,
    VerifiedBatch,
};
pub use source::{Capture, DigestSource, ReplaySource, SigningSource};
pub use tree::{
    default_build_threads, VbTree, VbTreeConfig, VbTreeStats, PARALLEL_BUILD_THRESHOLD,
};
pub use tree_codec::{decode_tree, encode_tree};
pub use verify::{
    check_freshness, ClientVerifier, FreshnessPolicy, FreshnessStamp, ResponseFreshness,
    VerifyError, VerifyReport, MAX_VO_STACK,
};
pub use vo::{
    execute, execute_compact, execute_multi_compact, CompactPart, CompactResponse, QueryResponse,
    RangeQuery, ResultRow, VerificationObject, VoOp,
};
pub use wire::{
    compact_response_bytes, decode_compact_response, decode_delta_batch, decode_response,
    decode_signed_delta, decode_txn_batch, encode_compact_prefix, encode_compact_response,
    encode_delta_batch, encode_response, encode_signed_delta, encode_txn_batch, measure_compact,
    measure_response, CompactStream, ResponseSize, StreamOp, StreamPartHeader,
};

/// Errors from tree operations and the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying storage error (schema mismatch etc.).
    Storage(vbx_storage::StorageError),
    /// Insert with a key that already exists.
    DuplicateKey(u64),
    /// Delete/lookup of a missing key.
    KeyNotFound(u64),
    /// An internal invariant failed (only reachable through bugs or
    /// external corruption — surfaced by `check_integrity`).
    InvariantViolation(String),
    /// Malformed wire data.
    Wire(String),
    /// An update delta did not match the replica's recomputed digests —
    /// the replica has diverged or the delta was forged.
    ReplicaDivergence(String),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            CoreError::KeyNotFound(k) => write!(f, "key {k} not found"),
            CoreError::InvariantViolation(m) => write!(f, "invariant violation: {m}"),
            CoreError::Wire(m) => write!(f, "wire format: {m}"),
            CoreError::ReplicaDivergence(m) => write!(f, "replica divergence: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}
