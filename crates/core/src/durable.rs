//! Durability codecs: WAL records and scheme-state serialisation.
//!
//! The central's write-ahead log (see `vbx-storage::wal`) stores one
//! record per committed write. This module defines the record payload
//! format — reusing the VBX wire codecs for ops, signed digests and
//! freshness stamps — and the [`DurableScheme`] trait every
//! authenticated scheme implements so its store and delta payloads can
//! be checkpointed and replayed.
//!
//! ## Record format (`VBW1`)
//!
//! ```text
//! record := "VBW1" kind:u8 clock:u64 body
//! kind 0 (commit op)    := stamp? seq:u64 table key_version:u32 op payload
//! kind 1 (commit batch) := start_seq:u64 table key_version:u32
//!                          n_ops:u32 op* n_payloads:u32 payload* stamp?
//! kind 2 (heartbeat)    := stamp?
//! kind 3 (commit txn)   := n_sections:u32 section* stamp?
//! section               := start_seq:u64 table key_version:u32
//!                          n_ops:u32 op* n_payloads:u32 payload*
//! ```
//!
//! `table` is a `u32`-length-prefixed UTF-8 string, `op` is the shared
//! `VBX3` update-op framing, `payload` is `u32` length + the scheme's
//! opaque delta bytes, and `stamp?` is the shared optional-stamp
//! framing. `clock` rides in every record so recovery restores a
//! monotonic [`FreshnessStamp`] clock — a restarted central must never
//! sign a stamp that rewinds `(seq, clock)`.
//!
//! Decoding arbitrary bytes never panics: truncation, lying counters
//! and bad tags all surface as [`CoreError::Wire`] (fuzzed in
//! `tests/wire_fuzz.rs`).

use crate::scheme::{AuthScheme, DeltaBatch, SignedDelta, TxnBatch, VbScheme};
use crate::tree_codec;
use crate::verify::FreshnessStamp;
use crate::wire;
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::accum::SignedDigest;

const MAGIC: &[u8; 4] = b"VBW1";

const KIND_COMMIT_OP: u8 = 0;
const KIND_COMMIT_BATCH: u8 = 1;
const KIND_HEARTBEAT: u8 = 2;
const KIND_COMMIT_TXN: u8 = 3;

/// A scheme whose store and delta payloads have byte encodings, making
/// the central recoverable: checkpoints persist `encode_store`, WAL
/// records persist `encode_delta`, and recovery replays the decoded
/// payloads through `AuthScheme::apply_delta` to byte-identical state.
pub trait DurableScheme: AuthScheme {
    /// Serialise a store (tree/table + signed digests) for a checkpoint.
    fn encode_store(&self, store: &Self::Store) -> Vec<u8>;
    /// Decode a checkpointed store.
    fn decode_store(&self, bytes: &[u8]) -> Result<Self::Store, CoreError>;
    /// Serialise one delta payload for a WAL record.
    fn encode_delta(&self, payload: &Self::Delta) -> Vec<u8>;
    /// Decode one delta payload (must consume `bytes` exactly).
    fn decode_delta(&self, bytes: &[u8]) -> Result<Self::Delta, CoreError>;
}

impl<const L: usize> DurableScheme for VbScheme<L> {
    fn encode_store(&self, store: &Self::Store) -> Vec<u8> {
        tree_codec::encode_tree(store)
    }

    fn decode_store(&self, bytes: &[u8]) -> Result<Self::Store, CoreError> {
        tree_codec::decode_tree(bytes, self.acc.clone())
    }

    fn encode_delta(&self, payload: &Self::Delta) -> Vec<u8> {
        encode_digest_vec(payload)
    }

    fn decode_delta(&self, bytes: &[u8]) -> Result<Self::Delta, CoreError> {
        decode_digest_vec(bytes, |buf| wire::get_digest(buf, &self.acc))
    }
}

/// Encode one signed digest with the shared `VBX` framing (role tag,
/// canonical exponent bytes, length-prefixed signature). Public so the
/// baseline schemes' store codecs frame digests identically.
pub fn put_signed_digest<const L: usize>(out: &mut Vec<u8>, d: &SignedDigest<L>) {
    wire::put_digest(out, d);
}

/// Decode one signed digest, advancing `buf`; `acc` validates the
/// exponent range.
pub fn get_signed_digest<const L: usize>(
    buf: &mut &[u8],
    acc: &vbx_crypto::accum::Accumulator<L>,
) -> Result<SignedDigest<L>, CoreError> {
    wire::get_digest(buf, acc)
}

/// Encode a `Vec<SignedDigest>` delta payload (the VB-tree's and the
/// naive scheme's payload shape) with the shared digest framing.
pub fn encode_digest_vec<const L: usize>(digests: &[SignedDigest<L>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + digests.len() * (L * 8 + 16));
    out.put_u32(digests.len() as u32);
    for d in digests {
        wire::put_digest(&mut out, d);
    }
    out
}

/// Decode a digest-vec payload written by [`encode_digest_vec`],
/// rejecting trailing bytes. `get` supplies the scheme's accumulator
/// context (exponent range validation).
pub fn decode_digest_vec<const L: usize>(
    bytes: &[u8],
    mut get: impl FnMut(&mut &[u8]) -> Result<SignedDigest<L>, CoreError>,
) -> Result<Vec<SignedDigest<L>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 {
        return Err(corrupt("digest vec count truncated"));
    }
    let n = buf.get_u32() as usize;
    let mut digests = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        digests.push(get(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in digest vec"));
    }
    Ok(digests)
}

/// One decoded WAL record.
pub enum WalRecord<S: AuthScheme> {
    /// A single committed op, with the owner clock at commit time and
    /// the per-commit stamp (present only in cluster/stamping mode).
    CommitOp {
        /// Owner logical clock when the op committed.
        clock: u64,
        /// Per-commit freshness stamp, if stamping was enabled.
        stamp: Option<FreshnessStamp>,
        /// The signed delta as fanned out to edges.
        delta: SignedDelta<S::Delta>,
    },
    /// A whole group-committed batch (one record, one fsync — the
    /// durability analogue of the batched signing sweep).
    CommitBatch {
        /// Owner logical clock when the batch committed.
        clock: u64,
        /// The batch envelope (carries its own optional stamp).
        batch: DeltaBatch<S::Delta>,
    },
    /// A clock tick + freshness stamp with no data change. Logged so a
    /// restart cannot rewind the clock below a stamp already handed out.
    Heartbeat {
        /// Owner logical clock at the tick.
        clock: u64,
        /// The signed stamp issued by the tick.
        stamp: FreshnessStamp,
    },
    /// An atomic multi-table transaction: **one** record carries every
    /// touched table's packed sweep, fsync'd before *any* table's state
    /// is acked. Recovery treats the record all-or-nothing — a torn
    /// tail rolls back the whole txn, never a table subset.
    CommitTxn {
        /// Owner logical clock when the txn committed.
        clock: u64,
        /// The txn envelope (carries its own optional stamp).
        txn: TxnBatch<S::Delta>,
    },
}

impl<S: AuthScheme> WalRecord<S> {
    /// The owner clock carried by this record.
    pub fn clock(&self) -> u64 {
        match self {
            WalRecord::CommitOp { clock, .. }
            | WalRecord::CommitBatch { clock, .. }
            | WalRecord::Heartbeat { clock, .. }
            | WalRecord::CommitTxn { clock, .. } => *clock,
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 4 {
        return Err(corrupt("string length truncated"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt("string truncated"));
    }
    let s = core::str::from_utf8(&buf[..len])
        .map_err(|_| corrupt("string not UTF-8"))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn put_payload(out: &mut Vec<u8>, bytes: &[u8]) {
    out.put_u32(bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn get_payload<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 4 {
        return Err(corrupt("payload length truncated"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt("payload truncated"));
    }
    let payload = &buf[..len];
    buf.advance(len);
    Ok(payload)
}

/// Encode a single-op commit record.
pub fn encode_wal_commit_op<S: DurableScheme>(
    scheme: &S,
    clock: u64,
    stamp: Option<&FreshnessStamp>,
    delta: &SignedDelta<S::Delta>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    out.push(KIND_COMMIT_OP);
    out.put_u64(clock);
    wire::put_stamp(&mut out, stamp);
    out.put_u64(delta.seq);
    put_str(&mut out, &delta.table);
    out.put_u32(delta.key_version);
    wire::put_update_op(&mut out, &delta.op);
    put_payload(&mut out, &scheme.encode_delta(&delta.payload));
    out
}

/// Encode one batch section (everything in a batch record except the
/// trailing stamp) — shared by the batch and txn record codecs.
fn put_batch_section<S: DurableScheme>(
    out: &mut Vec<u8>,
    scheme: &S,
    batch: &DeltaBatch<S::Delta>,
) {
    out.put_u64(batch.start_seq);
    put_str(out, &batch.table);
    out.put_u32(batch.key_version);
    out.put_u32(batch.ops.len() as u32);
    for op in &batch.ops {
        wire::put_update_op(out, op);
    }
    out.put_u32(batch.payloads.len() as u32);
    for payload in &batch.payloads {
        put_payload(out, &scheme.encode_delta(payload));
    }
}

/// Decode one batch section written by [`put_batch_section`], advancing
/// `buf`. The returned batch carries no stamp.
fn get_batch_section<S: DurableScheme>(
    scheme: &S,
    buf: &mut &[u8],
) -> Result<DeltaBatch<S::Delta>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 8 {
        return Err(corrupt("batch start seq truncated"));
    }
    let start_seq = buf.get_u64();
    let table = get_str(buf)?;
    if buf.remaining() < 8 {
        return Err(corrupt("batch header truncated"));
    }
    let key_version = buf.get_u32();
    let n_ops = buf.get_u32() as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
    for _ in 0..n_ops {
        ops.push(wire::get_update_op(buf)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("batch payload count truncated"));
    }
    let n_payloads = buf.get_u32() as usize;
    let mut payloads = Vec::with_capacity(n_payloads.min(1 << 16));
    for _ in 0..n_payloads {
        payloads.push(scheme.decode_delta(get_payload(buf)?)?);
    }
    Ok(DeltaBatch {
        start_seq,
        table,
        ops,
        payloads,
        key_version,
        stamp: None,
    })
}

/// Encode a batch commit record.
pub fn encode_wal_commit_batch<S: DurableScheme>(
    scheme: &S,
    clock: u64,
    batch: &DeltaBatch<S::Delta>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);
    out.push(KIND_COMMIT_BATCH);
    out.put_u64(clock);
    put_batch_section(&mut out, scheme, batch);
    wire::put_stamp(&mut out, batch.stamp.as_ref());
    out
}

/// Encode a multi-table txn commit record: **one** record, one fsync,
/// covering every touched table's packed sweep plus one freshness
/// stamp attesting the txn's end seq.
pub fn encode_wal_commit_txn<S: DurableScheme>(
    scheme: &S,
    clock: u64,
    txn: &TxnBatch<S::Delta>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024 * txn.sections.len().max(1));
    out.extend_from_slice(MAGIC);
    out.push(KIND_COMMIT_TXN);
    out.put_u64(clock);
    out.put_u32(txn.sections.len() as u32);
    for section in &txn.sections {
        put_batch_section(&mut out, scheme, section);
    }
    wire::put_stamp(&mut out, txn.stamp.as_ref());
    out
}

/// Encode a heartbeat record.
pub fn encode_wal_heartbeat(clock: u64, stamp: &FreshnessStamp) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(MAGIC);
    out.push(KIND_HEARTBEAT);
    out.put_u64(clock);
    wire::put_stamp(&mut out, Some(stamp));
    out
}

/// Decode any WAL record payload. Never panics on hostile bytes.
pub fn decode_wal_record<S: DurableScheme>(
    scheme: &S,
    bytes: &[u8],
) -> Result<WalRecord<S>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(corrupt("bad WAL record magic"));
    }
    buf.advance(4);
    if buf.remaining() < 9 {
        return Err(corrupt("WAL record header truncated"));
    }
    let kind = buf.get_u8();
    let clock = buf.get_u64();
    let record = match kind {
        KIND_COMMIT_OP => {
            let stamp = wire::get_stamp(&mut buf)?;
            if buf.remaining() < 8 {
                return Err(corrupt("commit seq truncated"));
            }
            let seq = buf.get_u64();
            let table = get_str(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(corrupt("commit key version truncated"));
            }
            let key_version = buf.get_u32();
            let op = wire::get_update_op(&mut buf)?;
            let payload = scheme.decode_delta(get_payload(&mut buf)?)?;
            WalRecord::CommitOp {
                clock,
                stamp,
                delta: SignedDelta {
                    seq,
                    table,
                    op,
                    payload,
                    key_version,
                },
            }
        }
        KIND_COMMIT_BATCH => {
            let mut batch = get_batch_section(scheme, &mut buf)?;
            batch.stamp = wire::get_stamp(&mut buf)?;
            WalRecord::CommitBatch { clock, batch }
        }
        KIND_COMMIT_TXN => {
            if buf.remaining() < 4 {
                return Err(corrupt("txn section count truncated"));
            }
            let n_sections = buf.get_u32() as usize;
            let mut sections = Vec::with_capacity(n_sections.min(1 << 12));
            for _ in 0..n_sections {
                sections.push(get_batch_section(scheme, &mut buf)?);
            }
            let stamp = wire::get_stamp(&mut buf)?;
            let txn = TxnBatch { sections, stamp };
            if !txn.is_contiguous() {
                return Err(corrupt("txn sections not contiguous"));
            }
            WalRecord::CommitTxn { clock, txn }
        }
        KIND_HEARTBEAT => {
            let stamp = wire::get_stamp(&mut buf)?
                .ok_or_else(|| corrupt("heartbeat record without stamp"))?;
            WalRecord::Heartbeat { clock, stamp }
        }
        t => return Err(corrupt(&format!("bad WAL record kind {t}"))),
    };
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in WAL record"));
    }
    Ok(record)
}

/// Encode a freshness stamp (checkpoint stamp-history sections).
pub fn encode_stamp(out: &mut Vec<u8>, stamp: &FreshnessStamp) {
    wire::put_stamp(out, Some(stamp));
}

/// Decode a stamp written by [`encode_stamp`], advancing `buf`.
pub fn decode_stamp(buf: &mut &[u8]) -> Result<FreshnessStamp, CoreError> {
    wire::get_stamp(buf)?.ok_or_else(|| CoreError::Wire("missing stamp".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::UpdateOp;
    use vbx_crypto::{Acc256, MockSigner, Signer};
    use vbx_storage::workload::WorkloadSpec;
    use vbx_storage::Tuple;
    use vbx_storage::Value;

    fn scheme() -> VbScheme<4> {
        VbScheme {
            acc: Acc256::test_default(),
            config: crate::tree::VbTreeConfig::with_fanout(8),
        }
    }

    fn sample_stamp(signer: &dyn Signer) -> FreshnessStamp {
        FreshnessStamp::sign(signer, 7, 42)
    }

    #[test]
    fn commit_op_roundtrip() {
        let s = scheme();
        let signer = MockSigner::new(7);
        let table = WorkloadSpec::new(20, 2, 8).build();
        let mut store = s.build(&table, &signer);
        let tuple = Tuple::new(
            table.schema(),
            500,
            vec![Value::from("new-a"), Value::from(2i64)],
        )
        .unwrap();
        let op = UpdateOp::Insert(tuple);
        let payload = s.update(&mut store, &op, &signer).unwrap();
        let delta = SignedDelta {
            seq: 9,
            table: "t".to_string(),
            op,
            payload,
            key_version: 3,
        };
        let stamp = sample_stamp(&signer);
        let bytes = encode_wal_commit_op(&s, 11, Some(&stamp), &delta);
        match decode_wal_record(&s, &bytes).unwrap() {
            WalRecord::CommitOp {
                clock,
                stamp: got_stamp,
                delta: got,
            } => {
                assert_eq!(clock, 11);
                assert_eq!(got_stamp.unwrap(), stamp);
                assert_eq!(got.seq, 9);
                assert_eq!(got.table, "t");
                assert_eq!(got.key_version, 3);
                assert_eq!(s.encode_delta(&got.payload), s.encode_delta(&delta.payload));
            }
            _ => panic!("wrong record kind"),
        }
    }

    #[test]
    fn heartbeat_roundtrip() {
        let s = scheme();
        let signer = MockSigner::new(8);
        let stamp = sample_stamp(&signer);
        let bytes = encode_wal_heartbeat(4, &stamp);
        match decode_wal_record(&s, &bytes).unwrap() {
            WalRecord::Heartbeat { clock, stamp: got } => {
                assert_eq!(clock, 4);
                assert_eq!(got, stamp);
            }
            _ => panic!("wrong record kind"),
        }
    }

    #[test]
    fn commit_txn_roundtrip_and_truncation() {
        let s = scheme();
        let signer = MockSigner::new(10);
        let table = WorkloadSpec::new(20, 2, 8).build();
        let mut store = s.build(&table, &signer);
        let tuple = Tuple::new(
            table.schema(),
            600,
            vec![Value::from("txn-a"), Value::from(1i64)],
        )
        .unwrap();
        let op_a = UpdateOp::Insert(tuple);
        let pay_a = s.update(&mut store, &op_a, &signer).unwrap();
        let op_b = UpdateOp::Delete(600);
        let pay_b = s.update(&mut store, &op_b, &signer).unwrap();
        let txn = TxnBatch {
            sections: vec![
                DeltaBatch {
                    start_seq: 5,
                    table: "a".to_string(),
                    ops: vec![op_a],
                    payloads: vec![pay_a],
                    key_version: 2,
                    stamp: None,
                },
                DeltaBatch {
                    start_seq: 6,
                    table: "b".to_string(),
                    ops: vec![op_b],
                    payloads: vec![pay_b],
                    key_version: 2,
                    stamp: None,
                },
            ],
            stamp: Some(sample_stamp(&signer)),
        };
        let bytes = encode_wal_commit_txn(&s, 13, &txn);
        match decode_wal_record(&s, &bytes).unwrap() {
            WalRecord::CommitTxn { clock, txn: got } => {
                assert_eq!(clock, 13);
                assert_eq!(got.sections.len(), 2);
                assert_eq!(got.start_seq(), 5);
                assert_eq!(got.end_seq(), 7);
                assert_eq!(got.stamp, txn.stamp);
                assert_eq!(got.sections[0].table, "a");
                assert_eq!(got.sections[1].table, "b");
            }
            _ => panic!("wrong record kind"),
        }
        for cut in 0..bytes.len() {
            assert!(decode_wal_record(&s, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn commit_txn_rejects_gapped_sections() {
        let s = scheme();
        let signer = MockSigner::new(11);
        let table = WorkloadSpec::new(20, 2, 8).build();
        let mut store = s.build(&table, &signer);
        let op = UpdateOp::Delete(4);
        let payload = s.update(&mut store, &op, &signer).unwrap();
        let txn: TxnBatch<_> = TxnBatch {
            sections: vec![
                DeltaBatch {
                    start_seq: 5,
                    table: "a".to_string(),
                    ops: vec![op.clone()],
                    payloads: vec![payload.clone()],
                    key_version: 0,
                    stamp: None,
                },
                DeltaBatch {
                    // Gap: the previous section ends at seq 6.
                    start_seq: 7,
                    table: "b".to_string(),
                    ops: vec![op],
                    payloads: vec![payload],
                    key_version: 0,
                    stamp: None,
                },
            ],
            stamp: None,
        };
        assert!(!txn.is_contiguous());
        let bytes = encode_wal_commit_txn(&s, 1, &txn);
        assert!(decode_wal_record(&s, &bytes).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let s = scheme();
        let signer = MockSigner::new(9);
        let stamp = sample_stamp(&signer);
        let bytes = encode_wal_heartbeat(4, &stamp);
        for cut in 0..bytes.len() {
            assert!(decode_wal_record(&s, &bytes[..cut]).is_err());
        }
    }
}
