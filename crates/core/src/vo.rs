//! Query execution at the edge server: results + verification objects.
//!
//! Section 3.3: for a selection, the edge server finds the **enveloping
//! subtree** — the smallest subtree covering all result tuples — and
//! returns, besides the result, a VO containing
//!
//! * `D_N`: the signed digest of the node at the top of that subtree,
//! * `D_S`: the signed digests of every branch/tuple inside the subtree
//!   that does not overlap the result (including in-range tuples filtered
//!   out by non-key predicates — the "gaps"),
//! * `D_P`: for projections, the signed digests of the filtered
//!   attributes.
//!
//! Thanks to the commutative digest algebra, `D_S` and `D_P` are *flat,
//! unordered multisets* — no structural information is shipped, which is
//! the paper's headline advantage over root-anchored Merkle VOs.

use crate::node::{Node, NodeId};
use crate::tree::VbTree;
use crate::verify::ResponseFreshness;
use vbx_crypto::accum::SignedDigest;
use vbx_storage::{Tuple, Value};

/// A range selection with optional projection.
///
/// `projection: None` means `SELECT *`; otherwise the listed column
/// indices are returned and every other attribute is represented in the
/// VO by its signed digest (`D_P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive lower key bound.
    pub lo: u64,
    /// Inclusive upper key bound.
    pub hi: u64,
    /// Columns to return (schema indices), or `None` for all.
    pub projection: Option<Vec<usize>>,
}

impl RangeQuery {
    /// Select every column of `[lo, hi]`.
    pub fn select_all(lo: u64, hi: u64) -> Self {
        Self {
            lo,
            hi,
            projection: None,
        }
    }

    /// Select a projection of `[lo, hi]`.
    pub fn project(lo: u64, hi: u64, columns: Vec<usize>) -> Self {
        Self {
            lo,
            hi,
            projection: Some(columns),
        }
    }

    /// The returned column indices given a schema width.
    pub fn returned_columns(&self, num_columns: usize) -> Vec<usize> {
        match &self.projection {
            Some(cols) => cols.clone(),
            None => (0..num_columns).collect(),
        }
    }
}

/// One result row: the key plus the projected values, in query
/// projection order.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Primary key (always returned — it is part of every digest input).
    pub key: u64,
    /// Projected attribute values.
    pub values: Vec<Value>,
}

/// The verification object of Section 3.3.
#[derive(Clone, Debug)]
pub struct VerificationObject<const L: usize> {
    /// `D_N` — signed digest of the enveloping subtree's top node.
    pub top: SignedDigest<L>,
    /// `D_S` — signed digests of non-overlapping branches and filtered
    /// tuples (flat multiset; order carries no meaning).
    pub d_s: Vec<SignedDigest<L>>,
    /// `D_P` — signed digests of projected-away attributes (flat
    /// multiset; no per-tuple attribution).
    pub d_p: Vec<SignedDigest<L>>,
    /// Key version the digests were signed under (checked against the
    /// key registry for freshness).
    pub key_version: u32,
}

impl<const L: usize> VerificationObject<L> {
    /// Number of digests in the VO (the paper's VO-size metric).
    pub fn digest_count(&self) -> usize {
        1 + self.d_s.len() + self.d_p.len()
    }
}

/// A query answer as shipped from edge server to client.
#[derive(Clone, Debug)]
pub struct QueryResponse<const L: usize> {
    /// Result rows in key order.
    pub rows: Vec<ResultRow>,
    /// The verification object.
    pub vo: VerificationObject<L>,
    /// The serving edge's replication position (applied seq + newest
    /// owner stamp). Defaults to "unstamped"; the edge service fills it
    /// in when it serves the response.
    pub freshness: ResponseFreshness,
}

/// Execute a range selection (+ optional non-key predicate + projection)
/// against a VB-tree, producing the result and its VO.
///
/// The predicate models selection on non-key attributes: in-range tuples
/// that fail it are "gaps" covered by their signed tuple digests in
/// `D_S`.
pub fn execute<const L: usize>(
    tree: &VbTree<L>,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
) -> QueryResponse<L> {
    assert!(query.lo <= query.hi, "empty key interval");
    let num_cols = tree.schema().num_columns();
    let returned = query.returned_columns(num_cols);
    for &c in &returned {
        assert!(c < num_cols, "projection column {c} out of range");
    }

    // 1. Locate the top of the enveloping subtree: descend while exactly
    //    one child overlaps the query range.
    let mut top_id = tree.root_id();
    while let Node::Internal(n) = tree.node(top_id) {
        let overlapping: Vec<usize> = (0..n.children.len())
            .filter(|&i| n.child_overlaps(i, query.lo, query.hi))
            .collect();
        if overlapping.len() == 1 {
            top_id = n.children[overlapping[0]];
        } else {
            break;
        }
    }

    // 2. Walk the subtree, partitioning into result rows and D_S.
    let mut rows = Vec::new();
    let mut d_s = Vec::new();
    let mut d_p = Vec::new();
    walk(
        tree, top_id, query, predicate, &returned, &mut rows, &mut d_s, &mut d_p,
    );

    let top = tree.node(top_id).digest().clone();
    QueryResponse {
        rows,
        vo: VerificationObject {
            top,
            d_s,
            d_p,
            key_version: tree.key_version(),
        },
        freshness: ResponseFreshness::default(),
    }
}

#[allow(clippy::too_many_arguments)]
fn walk<const L: usize>(
    tree: &VbTree<L>,
    id: NodeId,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
    returned: &[usize],
    rows: &mut Vec<ResultRow>,
    d_s: &mut Vec<SignedDigest<L>>,
    d_p: &mut Vec<SignedDigest<L>>,
) {
    match tree.node(id) {
        Node::Leaf(n) => {
            for e in &n.entries {
                let k = e.key();
                let in_range = k >= query.lo && k <= query.hi;
                let matches = in_range && predicate.is_none_or(|p| p(&e.tuple));
                if matches {
                    let values: Vec<Value> = returned
                        .iter()
                        .map(|&c| e.tuple.values[c].clone())
                        .collect();
                    rows.push(ResultRow { key: k, values });
                    // Filtered attributes -> D_P.
                    for (c, d) in e.attr_digests.iter().enumerate() {
                        if !returned.contains(&c) {
                            d_p.push(d.clone());
                        }
                    }
                } else {
                    // Out-of-range or predicate-filtered tuple -> D_S.
                    d_s.push(e.tuple_digest.clone());
                }
            }
        }
        Node::Internal(n) => {
            for (i, &child) in n.children.iter().enumerate() {
                if n.child_overlaps(i, query.lo, query.hi) {
                    walk(tree, child, query, predicate, returned, rows, d_s, d_p);
                } else {
                    d_s.push(tree.node(child).digest().clone());
                }
            }
        }
    }
}
