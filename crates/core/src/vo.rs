//! Query execution at the edge server: results + verification objects.
//!
//! Section 3.3: for a selection, the edge server finds the **enveloping
//! subtree** — the smallest subtree covering all result tuples — and
//! returns, besides the result, a VO containing
//!
//! * `D_N`: the signed digest of the node at the top of that subtree,
//! * `D_S`: the signed digests of every branch/tuple inside the subtree
//!   that does not overlap the result (including in-range tuples filtered
//!   out by non-key predicates — the "gaps"),
//! * `D_P`: for projections, the signed digests of the filtered
//!   attributes.
//!
//! Thanks to the commutative digest algebra, `D_S` and `D_P` are *flat,
//! unordered multisets* — no structural information is shipped, which is
//! the paper's headline advantage over root-anchored Merkle VOs.

use crate::node::{Node, NodeId};
use crate::tree::VbTree;
use crate::verify::ResponseFreshness;
use std::collections::HashMap;
use vbx_crypto::accum::SignedDigest;
use vbx_crypto::{SigVerifier, Signature};
use vbx_storage::{Tuple, Value};

/// A range selection with optional projection.
///
/// `projection: None` means `SELECT *`; otherwise the listed column
/// indices are returned and every other attribute is represented in the
/// VO by its signed digest (`D_P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive lower key bound.
    pub lo: u64,
    /// Inclusive upper key bound.
    pub hi: u64,
    /// Columns to return (schema indices), or `None` for all.
    pub projection: Option<Vec<usize>>,
}

impl RangeQuery {
    /// Select every column of `[lo, hi]`.
    pub fn select_all(lo: u64, hi: u64) -> Self {
        Self {
            lo,
            hi,
            projection: None,
        }
    }

    /// Select a projection of `[lo, hi]`.
    pub fn project(lo: u64, hi: u64, columns: Vec<usize>) -> Self {
        Self {
            lo,
            hi,
            projection: Some(columns),
        }
    }

    /// The returned column indices given a schema width.
    pub fn returned_columns(&self, num_columns: usize) -> Vec<usize> {
        match &self.projection {
            Some(cols) => cols.clone(),
            None => (0..num_columns).collect(),
        }
    }
}

/// One result row: the key plus the projected values, in query
/// projection order.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Primary key (always returned — it is part of every digest input).
    pub key: u64,
    /// Projected attribute values.
    pub values: Vec<Value>,
}

/// The verification object of Section 3.3.
#[derive(Clone, Debug)]
pub struct VerificationObject<const L: usize> {
    /// `D_N` — signed digest of the enveloping subtree's top node.
    pub top: SignedDigest<L>,
    /// `D_S` — signed digests of non-overlapping branches and filtered
    /// tuples (flat multiset; order carries no meaning).
    pub d_s: Vec<SignedDigest<L>>,
    /// `D_P` — signed digests of projected-away attributes (flat
    /// multiset; no per-tuple attribution).
    pub d_p: Vec<SignedDigest<L>>,
    /// Key version the digests were signed under (checked against the
    /// key registry for freshness).
    pub key_version: u32,
}

impl<const L: usize> VerificationObject<L> {
    /// Number of digests in the VO (the paper's VO-size metric).
    pub fn digest_count(&self) -> usize {
        1 + self.d_s.len() + self.d_p.len()
    }
}

/// A query answer as shipped from edge server to client.
#[derive(Clone, Debug)]
pub struct QueryResponse<const L: usize> {
    /// Result rows in key order.
    pub rows: Vec<ResultRow>,
    /// The verification object.
    pub vo: VerificationObject<L>,
    /// The serving edge's replication position (applied seq + newest
    /// owner stamp). Defaults to "unstamped"; the edge service fills it
    /// in when it serves the response.
    pub freshness: ResponseFreshness,
}

/// Execute a range selection (+ optional non-key predicate + projection)
/// against a VB-tree, producing the result and its VO.
///
/// The predicate models selection on non-key attributes: in-range tuples
/// that fail it are "gaps" covered by their signed tuple digests in
/// `D_S`.
pub fn execute<const L: usize>(
    tree: &VbTree<L>,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
) -> QueryResponse<L> {
    assert!(query.lo <= query.hi, "empty key interval");
    let num_cols = tree.schema().num_columns();
    let returned = query.returned_columns(num_cols);
    for &c in &returned {
        assert!(c < num_cols, "projection column {c} out of range");
    }
    let returned_mask = returned_column_mask(&returned, num_cols);

    // 1. Locate the top of the enveloping subtree: descend while exactly
    //    one child overlaps the query range.
    let top_id = envelope_top(tree, query);

    // 2. Walk the subtree, partitioning into result rows and D_S.
    let mut rows = Vec::new();
    let mut d_s = Vec::new();
    let mut d_p = Vec::new();
    walk(
        tree,
        top_id,
        query,
        predicate,
        &returned,
        &returned_mask,
        &mut rows,
        &mut d_s,
        &mut d_p,
    );

    let top = tree.node(top_id).digest().clone();
    QueryResponse {
        rows,
        vo: VerificationObject {
            top,
            d_s,
            d_p,
            key_version: tree.key_version(),
        },
        freshness: ResponseFreshness::default(),
    }
}

/// Column-membership mask for a projection: `mask[c]` is true when
/// column `c` is returned. Computed once per query so the per-attribute
/// test in the subtree walk is O(1) instead of O(columns).
fn returned_column_mask(returned: &[usize], num_cols: usize) -> Vec<bool> {
    let mut mask = vec![false; num_cols];
    for &c in returned {
        mask[c] = true;
    }
    mask
}

/// Top of the enveloping subtree: descend from the root while exactly
/// one child overlaps the query range. Allocation-free — the candidate
/// scan short-circuits as soon as a second overlapping child appears.
fn envelope_top<const L: usize>(tree: &VbTree<L>, query: &RangeQuery) -> NodeId {
    let mut top_id = tree.root_id();
    while let Node::Internal(n) = tree.node(top_id) {
        let mut only: Option<NodeId> = None;
        for i in 0..n.children.len() {
            if n.child_overlaps(i, query.lo, query.hi) {
                if only.is_some() {
                    only = None;
                    break;
                }
                only = Some(n.children[i]);
            }
        }
        match only {
            Some(child) => top_id = child,
            None => break,
        }
    }
    top_id
}

#[allow(clippy::too_many_arguments)]
fn walk<const L: usize>(
    tree: &VbTree<L>,
    id: NodeId,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
    returned: &[usize],
    returned_mask: &[bool],
    rows: &mut Vec<ResultRow>,
    d_s: &mut Vec<SignedDigest<L>>,
    d_p: &mut Vec<SignedDigest<L>>,
) {
    match tree.node(id) {
        Node::Leaf(n) => {
            for e in &n.entries {
                let k = e.key();
                let in_range = k >= query.lo && k <= query.hi;
                let matches = in_range && predicate.is_none_or(|p| p(&e.tuple));
                if matches {
                    let values: Vec<Value> = returned
                        .iter()
                        .map(|&c| e.tuple.values[c].clone())
                        .collect();
                    rows.push(ResultRow { key: k, values });
                    // Filtered attributes -> D_P.
                    for (c, d) in e.attr_digests.iter().enumerate() {
                        if !returned_mask[c] {
                            d_p.push(d.clone());
                        }
                    }
                } else {
                    // Out-of-range or predicate-filtered tuple -> D_S.
                    d_s.push(e.tuple_digest.clone());
                }
            }
        }
        Node::Internal(n) => {
            for (i, &child) in n.children.iter().enumerate() {
                if n.child_overlaps(i, query.lo, query.hi) {
                    walk(
                        tree,
                        child,
                        query,
                        predicate,
                        returned,
                        returned_mask,
                        rows,
                        d_s,
                        d_p,
                    );
                } else {
                    d_s.push(tree.node(child).digest().clone());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Compact stack-machine VOs (the VBX4 encoding)
// ---------------------------------------------------------------------

/// One op of the compact stack-machine VO stream.
///
/// The stream linearises the enveloping subtree: `Begin`/`End` bracket
/// each descended child node, digests are folded into the innermost
/// open frame, and `Row` consumes the next result row (the verifier
/// recomputes its returned attribute digests). A digest whose signature
/// is **empty** is covered by the response's single aggregate signature
/// sweep instead of an individual signature — the compact encoding's
/// byte and verification win.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VoOp<const L: usize> {
    /// Descend into an overlapping child: push a fresh digest frame.
    Begin,
    /// Close the current child: pop its frame and fold the product into
    /// the parent frame.
    End,
    /// Fold a digest into the innermost frame. Empty signature ⇒
    /// authenticated by the aggregate sweep; otherwise individually
    /// signed (the no-aggregation fallback).
    Push(SignedDigest<L>),
    /// Consume the next result row: the verifier recomputes the
    /// returned attribute digests from the shipped values.
    Row,
    /// Fold the shared dictionary entry at this index into the
    /// innermost frame (multi-query dedup: a digest shared by several
    /// parts ships once).
    Ref(u32),
}

/// One query's slice of a compact response: its rows, the signed digest
/// of its enveloping subtree's top node, and the op stream that
/// rebuilds the top digest from rows + shipped digests.
#[derive(Clone, Debug)]
pub struct CompactPart<const L: usize> {
    /// Result rows in key order.
    pub rows: Vec<ResultRow>,
    /// `D_N` — the enveloping subtree's top digest. Empty signature ⇒
    /// aggregate-covered.
    pub top: SignedDigest<L>,
    /// The stack-machine op stream.
    pub ops: Vec<VoOp<L>>,
}

/// A compact (op-stream) query answer: one or more parts — one per
/// range in the client's batch — plus the shared digest dictionary and
/// the single aggregate signature covering every bare digest.
#[derive(Clone, Debug)]
pub struct CompactResponse<const L: usize> {
    /// One part per query, in query order.
    pub parts: Vec<CompactPart<L>>,
    /// Digests referenced by [`VoOp::Ref`] — shipped and signature-
    /// checked once, no matter how many parts fold them in.
    pub dict: Vec<SignedDigest<L>>,
    /// Condensed signature over every bare digest (dict entries first,
    /// then per part: top, then pushes in stream order). `None` ⇒ every
    /// digest carries its own signature.
    pub agg_sig: Option<Signature>,
    /// Key version the digests were signed under.
    pub key_version: u32,
    /// The serving edge's replication position (see
    /// [`QueryResponse::freshness`]).
    pub freshness: ResponseFreshness,
}

impl<const L: usize> CompactResponse<L> {
    /// Number of digests shipped (tops + inline pushes + dictionary
    /// entries). `Ref` ops are free — that is the multi-query dedup win
    /// over `k` independent flat VOs.
    pub fn digest_count(&self) -> usize {
        let pushed: usize = self
            .parts
            .iter()
            .map(|p| {
                p.ops
                    .iter()
                    .filter(|op| matches!(op, VoOp::Push(_)))
                    .count()
            })
            .sum();
        self.parts.len() + pushed + self.dict.len()
    }

    /// Total result rows across all parts.
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(|p| p.rows.len()).sum()
    }
}

/// Compact single-query execution: the op-stream analogue of
/// [`execute`]. When `aggregator` supports signature aggregation, every
/// digest ships bare and one condensed signature covers them all.
pub fn execute_compact<const L: usize>(
    tree: &VbTree<L>,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
    aggregator: Option<&dyn SigVerifier>,
) -> CompactResponse<L> {
    execute_multi_compact(tree, std::slice::from_ref(query), predicate, aggregator)
}

/// Compact multi-query execution: `k` ranges against one table answered
/// with one merged response. Digests shared between parts (overlapping
/// `D_S` branches, shared path prefixes) are promoted into the
/// dictionary and shipped once; one amortised signature sweep replaces
/// `k` independent ones.
///
/// The same `predicate` applies to every range (it models the query's
/// non-key residual; batched ranges come from one planned query).
pub fn execute_multi_compact<const L: usize>(
    tree: &VbTree<L>,
    queries: &[RangeQuery],
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
    aggregator: Option<&dyn SigVerifier>,
) -> CompactResponse<L> {
    assert!(!queries.is_empty(), "at least one range");
    let num_cols = tree.schema().num_columns();

    // Pass 1: per-query envelope walks, ops carrying full signatures.
    let mut parts: Vec<CompactPart<L>> = Vec::with_capacity(queries.len());
    for query in queries {
        assert!(query.lo <= query.hi, "empty key interval");
        let returned = query.returned_columns(num_cols);
        for &c in &returned {
            assert!(c < num_cols, "projection column {c} out of range");
        }
        let returned_mask = returned_column_mask(&returned, num_cols);
        let top_id = envelope_top(tree, query);
        let mut rows = Vec::new();
        let mut ops = Vec::new();
        walk_compact(
            tree,
            top_id,
            query,
            predicate,
            &returned,
            &returned_mask,
            &mut rows,
            &mut ops,
        );
        parts.push(CompactPart {
            rows,
            top: tree.node(top_id).digest().clone(),
            ops,
        });
    }

    // Pass 2: promote digests pushed by ≥ 2 parts into the shared
    // dictionary and rewrite their pushes as `Ref`s.
    let mut dict: Vec<SignedDigest<L>> = Vec::new();
    if parts.len() > 1 {
        let mut seen_in: HashMap<(u8, Vec<u8>), (usize, bool)> = HashMap::new();
        for (pi, part) in parts.iter().enumerate() {
            for op in &part.ops {
                if let VoOp::Push(d) = op {
                    let key = (d.role.to_tag(), d.exp.to_be_bytes());
                    match seen_in.get_mut(&key) {
                        None => {
                            seen_in.insert(key, (pi, false));
                        }
                        Some((first, shared)) => {
                            if *first != pi {
                                *shared = true;
                            }
                        }
                    }
                }
            }
        }
        let mut index: HashMap<(u8, Vec<u8>), u32> = HashMap::new();
        for part in &mut parts {
            for op in &mut part.ops {
                let VoOp::Push(d) = op else { continue };
                let key = (d.role.to_tag(), d.exp.to_be_bytes());
                if !seen_in.get(&key).is_some_and(|&(_, shared)| shared) {
                    continue;
                }
                let idx = *index.entry(key).or_insert_with(|| {
                    dict.push(d.clone());
                    (dict.len() - 1) as u32
                });
                *op = VoOp::Ref(idx);
            }
        }
    }

    // Pass 3: condense the signatures. Absorb order is wire order —
    // dictionary entries, then per part: top, then pushes in stream
    // order. On success every digest ships bare. A single-digest
    // response keeps its individual signature: the condensed signature
    // is modulus-sized, so aggregation only pays from two digests up.
    let shipped: usize = dict.len()
        + parts.len()
        + parts
            .iter()
            .map(|p| {
                p.ops
                    .iter()
                    .filter(|op| matches!(op, VoOp::Push(_)))
                    .count()
            })
            .sum::<usize>();
    let mut agg_sig = None;
    if let Some(aggv) = aggregator.filter(|_| shipped >= 2) {
        let mut sigs: Vec<Signature> = dict.iter().map(|d| d.sig.clone()).collect();
        for part in &parts {
            sigs.push(part.top.sig.clone());
            for op in &part.ops {
                if let VoOp::Push(d) = op {
                    sigs.push(d.sig.clone());
                }
            }
        }
        if let Some(agg) = aggv.aggregate_signatures(&sigs) {
            for d in &mut dict {
                d.sig = Signature(Vec::new());
            }
            for part in &mut parts {
                part.top.sig = Signature(Vec::new());
                for op in &mut part.ops {
                    if let VoOp::Push(d) = op {
                        d.sig = Signature(Vec::new());
                    }
                }
            }
            agg_sig = Some(agg);
        }
    }

    CompactResponse {
        parts,
        dict,
        agg_sig,
        key_version: tree.key_version(),
        freshness: ResponseFreshness::default(),
    }
}

/// The op-stream analogue of [`walk`]: same envelope traversal, but
/// emitting `Begin`/`End` structure and digest pushes instead of flat
/// `D_S`/`D_P` multisets.
///
/// Frames that would contain no digest push anywhere below them are
/// elided — the digest algebra is commutative, so a frame holding only
/// rows folds to the same product without the bracketing, and a
/// fully-overlapped subtree costs zero framing bytes. Returns whether
/// this subtree emitted any `Push`.
#[allow(clippy::too_many_arguments)]
fn walk_compact<const L: usize>(
    tree: &VbTree<L>,
    id: NodeId,
    query: &RangeQuery,
    predicate: Option<&dyn Fn(&Tuple) -> bool>,
    returned: &[usize],
    returned_mask: &[bool],
    rows: &mut Vec<ResultRow>,
    ops: &mut Vec<VoOp<L>>,
) -> bool {
    let mut pushed = false;
    match tree.node(id) {
        Node::Leaf(n) => {
            for e in &n.entries {
                let k = e.key();
                let in_range = k >= query.lo && k <= query.hi;
                let matches = in_range && predicate.is_none_or(|p| p(&e.tuple));
                if matches {
                    let values: Vec<Value> = returned
                        .iter()
                        .map(|&c| e.tuple.values[c].clone())
                        .collect();
                    rows.push(ResultRow { key: k, values });
                    ops.push(VoOp::Row);
                    for (c, d) in e.attr_digests.iter().enumerate() {
                        if !returned_mask[c] {
                            ops.push(VoOp::Push(d.clone()));
                            pushed = true;
                        }
                    }
                } else {
                    ops.push(VoOp::Push(e.tuple_digest.clone()));
                    pushed = true;
                }
            }
        }
        Node::Internal(n) => {
            for (i, &child) in n.children.iter().enumerate() {
                if n.child_overlaps(i, query.lo, query.hi) {
                    let begin_at = ops.len();
                    ops.push(VoOp::Begin);
                    let child_pushed = walk_compact(
                        tree,
                        child,
                        query,
                        predicate,
                        returned,
                        returned_mask,
                        rows,
                        ops,
                    );
                    if child_pushed {
                        ops.push(VoOp::End);
                        pushed = true;
                    } else {
                        ops.remove(begin_at);
                    }
                } else {
                    ops.push(VoOp::Push(tree.node(child).digest().clone()));
                    pushed = true;
                }
            }
        }
    }
    pushed
}
