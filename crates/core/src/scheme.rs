//! The [`AuthScheme`] layer: one interface over every authentication
//! scheme the paper compares.
//!
//! Pang & Tan evaluate the VB-tree against the **Naive** strategy
//! (Appendix) and a Devanbu-style **Merkle hash tree** (Section 2,
//! Figure 1). The seed code base grew each of those with its own
//! incompatible API, which meant the deployment layer, the tamper
//! scenarios, and the measurement harness were written three times (or,
//! mostly, only once — for the VB-tree). This module is the common
//! boundary:
//!
//! * a scheme **descriptor** (e.g. [`VbScheme`]) carries the public
//!   parameters — accumulator group, tree fan-out — and knows how to
//!   [`build`](AuthScheme::build) an authenticated store, answer
//!   [`range_query`](AuthScheme::range_query)s, produce and replay
//!   signed update deltas, and [`verify`](AuthScheme::verify) responses
//!   client-side;
//! * every verification counts its primitive operations into a shared
//!   [`CostMeter`], so the Section 4 cost comparisons run through one
//!   pipeline;
//! * [`TamperMode`] models a compromised edge host *generically*: each
//!   scheme implements the attacks against its own response type, so the
//!   detection matrix (which scheme catches which attack) is executable.
//!
//! `vbx_baselines` implements the trait for the Naive and Merkle
//! schemes; `vbx_edge` builds the generic central/edge deployment on
//! top; `vbx_bench` measures all three through the same entry points.

use crate::chunks::{StoreRestorer, SyncError, TreeChunks};
use crate::meter::CostMeter;
use crate::restore::Restorer;
use crate::source::{Capture, DeferredSource, ReplaySource};
use crate::tree::{VbTree, VbTreeConfig};
use crate::verify::{ClientVerifier, FreshnessStamp, ResponseFreshness, VerifyError};
use crate::vo::{
    execute, execute_multi_compact, CompactResponse, QueryResponse, RangeQuery, ResultRow,
    VerificationObject, VoOp,
};
use crate::wire::measure_response;
use crate::CoreError;
use vbx_crypto::accum::{Accumulator, SignedDigest};
use vbx_crypto::{SigVerifier, Signer};
use vbx_storage::{Schema, Table, Tuple, Value};

/// One update operation, scheme-neutral (shipped inside a
/// [`SignedDelta`]).
#[derive(Clone, Debug)]
pub enum UpdateOp {
    /// Insert a tuple.
    Insert(Tuple),
    /// Delete by key.
    Delete(u64),
    /// Batch range delete (inclusive bounds).
    DeleteRange(u64, u64),
}

/// Simulated compromises of an edge host, applied to a response before
/// it leaves the (hacked) server. Every scheme implements all modes via
/// [`AuthScheme::tamper`]; which ones each scheme *detects* is the
/// paper's comparison matrix (see `vbx_edge`'s scenario tests).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TamperMode {
    /// Honest behaviour.
    #[default]
    None,
    /// Corrupt the first value of the first result row.
    MutateValue,
    /// Inject a spurious copy of an existing row under a fresh key.
    InjectRow,
    /// Silently remove a result row (without touching the VO).
    DropRow,
    /// Remove a result row *and* rebalance the scheme's auth material to
    /// hide the removal where the scheme allows it — for the VB-tree,
    /// reclassifying the signed tuple digest into `D_S` (the paper's
    /// documented completeness boundary, §3.1).
    DropAndReclassify {
        /// Key of the row to suppress.
        key: u64,
    },
}

/// A signed update delta: the operation, the scheme-specific
/// authentication payload replicas replay, and the envelope metadata.
#[derive(Clone, Debug)]
pub struct SignedDelta<P> {
    /// Sequence number (contiguous per central server).
    pub seq: u64,
    /// Table the update applies to.
    pub table: String,
    /// The operation.
    pub op: UpdateOp,
    /// Scheme-specific signed material (e.g. pre-signed digests for the
    /// VB-tree, the new signed root for a Merkle tree).
    pub payload: P,
    /// Key version the payload was signed under.
    pub key_version: u32,
}

/// A group-committed batch of update operations: `k` ops travelling
/// under **one** envelope, with **one** optional owner freshness stamp
/// attesting the batch's end position — the write-pipeline counterpart
/// of [`SignedDelta`].
///
/// The ops occupy the contiguous sequence range `[start_seq,
/// end_seq())`. `payloads` is scheme-defined: the per-op default packs
/// one payload per op, while schemes with a real batch fast path (the
/// VB-tree's deferred signing sweep, the Merkle tree's single root
/// re-sign) pack the whole batch into a single payload, which is where
/// the amortisation comes from.
#[derive(Clone, Debug)]
pub struct DeltaBatch<P> {
    /// Sequence number of the first op in the batch.
    pub start_seq: u64,
    /// Table every op in the batch applies to.
    pub table: String,
    /// The operations, in commit order.
    pub ops: Vec<UpdateOp>,
    /// Scheme-specific signed material (cardinality is scheme-defined —
    /// see the type docs).
    pub payloads: Vec<P>,
    /// Key version the payloads were signed under.
    pub key_version: u32,
    /// Owner stamp attesting `end_seq()` committed deltas (present in
    /// cluster deployments, where commits are stamped).
    pub stamp: Option<FreshnessStamp>,
}

impl<P> DeltaBatch<P> {
    /// Sequence number one past the batch's last op.
    pub fn end_seq(&self) -> u64 {
        self.start_seq + self.ops.len() as u64
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// An atomic multi-table transaction: one envelope carrying every
/// touched table's group-committed batch, covering **one** contiguous
/// sequence range with **one** optional owner freshness stamp
/// attesting the txn's end position.
///
/// Sections sit in commit order and chain seamlessly: section `i+1`
/// starts exactly where section `i` ends, so the txn occupies
/// `[start_seq(), end_seq())` with no gaps. The whole envelope commits
/// (and is logged, replicated and applied) **all-or-nothing** — no
/// observer may ever see table A at the txn's end seq while table B is
/// still at the pre-txn seq.
#[derive(Clone, Debug)]
pub struct TxnBatch<P> {
    /// Per-table batch sections, in commit order. Each section's
    /// `stamp` is `None`; the txn-level [`stamp`](Self::stamp) covers
    /// the whole envelope.
    pub sections: Vec<DeltaBatch<P>>,
    /// Owner stamp attesting `end_seq()` committed deltas (present in
    /// cluster deployments, where commits are stamped).
    pub stamp: Option<FreshnessStamp>,
}

impl<P> TxnBatch<P> {
    /// Sequence number of the txn's first op.
    ///
    /// # Panics
    /// Panics on an empty txn — commit paths never produce one.
    pub fn start_seq(&self) -> u64 {
        self.sections
            .first()
            .expect("a TxnBatch carries at least one section")
            .start_seq
    }

    /// Sequence number one past the txn's last op.
    ///
    /// # Panics
    /// Panics on an empty txn — commit paths never produce one.
    pub fn end_seq(&self) -> u64 {
        self.sections
            .last()
            .expect("a TxnBatch carries at least one section")
            .end_seq()
    }

    /// Total ops across all sections.
    pub fn ops(&self) -> u64 {
        self.sections.iter().map(|s| s.ops.len() as u64).sum()
    }

    /// The tables touched, in commit order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|s| s.table.as_str())
    }

    /// True when the sections chain into one contiguous seq range and
    /// none is empty — the shape every commit path guarantees and every
    /// decode/apply path checks before trusting wire bytes.
    pub fn is_contiguous(&self) -> bool {
        if self.sections.is_empty() {
            return false;
        }
        let mut next = self.sections[0].start_seq;
        for section in &self.sections {
            if section.is_empty() || section.start_seq != next {
                return false;
            }
            next = section.end_seq();
        }
        true
    }
}

/// Successful scheme verification: the authenticated rows plus the
/// dominant cost statistic.
#[derive(Clone, Debug)]
pub struct VerifiedBatch {
    /// Result rows, in key order, in the scheme's returned-column order.
    pub rows: Vec<ResultRow>,
    /// Signature verifications performed (`Cost_s` events).
    pub signatures_checked: usize,
}

/// A query-result authentication scheme, as deployed between a trusted
/// central server, untrusted edge servers, and verifying clients.
///
/// The descriptor (`self`) carries public parameters only; private keys
/// enter exclusively through the `&dyn Signer` arguments of the trusted
/// entry points ([`build`](Self::build), [`update`](Self::update)).
pub trait AuthScheme {
    /// Short scheme name for reports and benches.
    const NAME: &'static str;

    /// The authenticated server-side store (tree/table + digests).
    type Store: 'static;
    /// A query answer as shipped from edge server to client.
    type Response: Clone;
    /// The detachable verification object / proof part of a response.
    type Vo;
    /// Verification and replication failures.
    type Error: std::error::Error + 'static;
    /// Scheme-specific payload of a [`SignedDelta`].
    type Delta: Clone;

    /// Trusted: build and sign the store over a table.
    fn build(&self, table: &Table, signer: &dyn Signer) -> Self::Store;

    /// Untrusted: answer a range query (+ projection, where supported)
    /// with authentication material attached.
    fn range_query(&self, store: &Self::Store, query: &RangeQuery) -> Self::Response;

    /// Trusted: apply an update to the authoritative store, producing
    /// the signed payload replicas need to replay it.
    fn update(
        &self,
        store: &mut Self::Store,
        op: &UpdateOp,
        signer: &dyn Signer,
    ) -> Result<Self::Delta, Self::Error>;

    /// Untrusted: replay a signed delta against a replica, detecting
    /// divergence where the scheme can.
    fn apply_delta(
        &self,
        store: &mut Self::Store,
        op: &UpdateOp,
        payload: &Self::Delta,
        key_version: u32,
    ) -> Result<(), Self::Error>;

    /// Trusted: apply a whole batch of updates as one group commit,
    /// producing the batch payloads replicas replay. The default loops
    /// over [`update`](Self::update) — one payload per op, no
    /// amortisation. Schemes with a real batch fast path override this
    /// to share authentication work across the batch (and then return a
    /// payload cardinality of their choosing — see [`DeltaBatch`]).
    ///
    /// **Atomicity contract:** on `Err`, the store must be unchanged —
    /// the central server commits a batch all-or-nothing and logs
    /// nothing on failure, so a half-applied store would silently
    /// diverge from the catalog and every replica. The *default* loop
    /// stops at the first error and cannot roll back (it knows nothing
    /// about `Self::Store`); schemes whose store is `Clone` get the
    /// contract by overriding with [`update_batch_atomic`] (as the
    /// Naive/Merkle baselines do), and the VB-tree's deferred-sweep
    /// override restores a pre-batch backup itself.
    fn update_batch(
        &self,
        store: &mut Self::Store,
        ops: &[UpdateOp],
        signer: &dyn Signer,
    ) -> Result<Vec<Self::Delta>, Self::Error> {
        ops.iter()
            .map(|op| self.update(store, op, signer))
            .collect()
    }

    /// Untrusted: replay a batch produced by
    /// [`update_batch`](Self::update_batch). The default replays one
    /// payload per op.
    ///
    /// # Panics
    /// The default implementation panics when `payloads` does not carry
    /// exactly one payload per op — in-process callers (the central
    /// server, the cluster coordinator) always hand over well-formed
    /// batches, mirroring [`DeltaLog`](crate)'s contiguity assertion.
    /// Schemes with a wire format for batches (the VB-tree) override
    /// this with graceful divergence errors for arbitrary payloads.
    fn apply_delta_batch(
        &self,
        store: &mut Self::Store,
        ops: &[UpdateOp],
        payloads: &[Self::Delta],
        key_version: u32,
    ) -> Result<(), Self::Error> {
        assert_eq!(
            ops.len(),
            payloads.len(),
            "per-op batch replay needs one payload per op"
        );
        for (op, payload) in ops.iter().zip(payloads) {
            self.apply_delta(store, op, payload, key_version)?;
        }
        Ok(())
    }

    /// Client-side verification with public material only. Primitive
    /// operations (hashes, combines, signature checks) are counted into
    /// `meter` — the shared hook behind the Section 4 cost comparisons.
    fn verify(
        &self,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &Self::Response,
        meter: &mut CostMeter,
    ) -> Result<VerifiedBatch, Self::Error>;

    /// The detached VO / proof material of a response.
    fn vo(resp: &Self::Response) -> Self::Vo;

    /// The result rows carried by a response (pre-verification view).
    fn response_rows(resp: &Self::Response) -> Vec<ResultRow>;

    /// Bytes on the wire for a response (the communication-cost metric).
    fn response_wire_bytes(resp: &Self::Response) -> usize;

    /// Digests/hashes shipped in the VO (the VO-size metric).
    fn vo_digest_count(resp: &Self::Response) -> usize;

    /// Key version the response's material was signed under.
    fn response_key_version(resp: &Self::Response) -> u32;

    /// Simulate a compromised host: mutate `resp` according to `mode`.
    /// Receives the store and query because some attacks (the VB-tree's
    /// reclassification) are re-executions, not response edits.
    fn tamper(
        &self,
        store: &Self::Store,
        query: &RangeQuery,
        resp: &mut Self::Response,
        mode: &TamperMode,
    );

    /// Lock-resource ids an update transaction must hold exclusively.
    /// Defaults to a single whole-store resource; the VB-tree overrides
    /// with path/envelope node ids (Section 3.4).
    fn lock_targets(&self, _store: &Self::Store, _op: &UpdateOp) -> Vec<usize> {
        vec![0]
    }

    /// Lock-resource ids a query must hold **shared** — the digests of
    /// its enveloping subtree, so queries whose subtrees do not overlap
    /// an in-flight update proceed concurrently (Section 3.4). Defaults
    /// to the same single whole-store resource as
    /// [`lock_targets`](Self::lock_targets); the VB-tree overrides with
    /// the envelope node ids.
    fn query_lock_targets(&self, _store: &Self::Store, _query: &RangeQuery) -> Vec<usize> {
        vec![0]
    }

    /// Stamp a response with the serving edge's replication position
    /// (applied seq + newest owner stamp). Default: the scheme's wire
    /// format carries no freshness metadata, so this is a no-op.
    fn stamp_freshness(_resp: &mut Self::Response, _freshness: &ResponseFreshness) {}

    /// The freshness metadata carried by a response, where the scheme's
    /// wire format has any.
    fn response_freshness(_resp: &Self::Response) -> Option<&ResponseFreshness> {
        None
    }

    /// Whether the scheme can project server-side (ship fewer columns).
    fn supports_projection(&self) -> bool {
        false
    }

    /// Whether range proofs demonstrate completeness (dropped rows are
    /// detected).
    fn proves_completeness(&self) -> bool {
        false
    }

    // -- Verified chunked state sync -----------------------------------

    /// Number of chunks a verified sync stream of `store` comprises.
    /// Zero means the scheme does not support chunked sync (the
    /// default; every shipped scheme overrides).
    fn sync_chunk_count(&self, _store: &Self::Store) -> usize {
        0
    }

    /// Source side of verified sync: encode chunk `index` of `store`.
    fn encode_sync_chunk(&self, _store: &Self::Store, _index: usize) -> Result<Vec<u8>, SyncError> {
        Err(SyncError::Unsupported(Self::NAME))
    }

    /// Restoring side: a [`StoreRestorer`] that authenticates every
    /// chunk against the scheme's signed commitment under `verifier`
    /// (the owner's public key) **as it ingests** — a restoring edge
    /// never installs state it has not verified.
    fn begin_restore(
        &self,
        _verifier: std::sync::Arc<dyn SigVerifier>,
    ) -> Box<dyn StoreRestorer<Self::Store>> {
        struct Unsupported<Store>(&'static str, std::marker::PhantomData<fn() -> Store>);
        impl<Store> StoreRestorer<Store> for Unsupported<Store> {
            fn ingest(&mut self, _chunk: &[u8]) -> Result<(), SyncError> {
                Err(SyncError::Unsupported(self.0))
            }
            fn finish(self: Box<Self>) -> Result<Store, SyncError> {
                Err(SyncError::Unsupported(self.0))
            }
        }
        Box::new(Unsupported(Self::NAME, std::marker::PhantomData))
    }
}

/// The per-op batch loop with the [`AuthScheme::update_batch`]
/// atomicity contract bolted on: snapshot the store, apply each op
/// through [`AuthScheme::update`], restore the snapshot on the first
/// failure. The override of choice for schemes without a batch fast
/// path whose store is `Clone` (the Naive and Merkle baselines).
pub fn update_batch_atomic<S: AuthScheme>(
    scheme: &S,
    store: &mut S::Store,
    ops: &[UpdateOp],
    signer: &dyn Signer,
) -> Result<Vec<S::Delta>, S::Error>
where
    S::Store: Clone,
{
    let backup = store.clone();
    let mut payloads = Vec::with_capacity(ops.len());
    for op in ops {
        match scheme.update(store, op, signer) {
            Ok(p) => payloads.push(p),
            Err(e) => {
                *store = backup;
                return Err(e);
            }
        }
    }
    Ok(payloads)
}

/// Corrupt the first value of a row in place (shared by schemes'
/// `MutateValue` tampering).
pub fn mutate_first_value(values: &mut [Value]) {
    if let Some(v) = values.first_mut() {
        *v = match v {
            Value::Int(x) => Value::Int(*x ^ 1),
            Value::Float(x) => Value::Float(*x + 1.0),
            Value::Text(_) => Value::Text("tampered".into()),
            Value::Bytes(b) => {
                let mut b = b.clone();
                b.push(0xFF);
                Value::Bytes(b)
            }
        };
    }
}

/// Append a forged copy of the last row under `bump_key` (shared by
/// schemes' `InjectRow` tampering).
pub fn inject_duplicate_last<T: Clone>(rows: &mut Vec<T>, bump_key: impl FnOnce(&mut T)) {
    if let Some(last) = rows.last().cloned() {
        let mut forged = last;
        bump_key(&mut forged);
        rows.push(forged);
    }
}

/// Remove the middle row without touching the auth material (shared by
/// schemes' `DropRow` tampering).
pub fn drop_middle_row<T>(rows: &mut Vec<T>) {
    if !rows.is_empty() {
        let mid = rows.len() / 2;
        rows.remove(mid);
    }
}

/// Errors from the VB-tree scheme: tree/update failures or client-side
/// verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VbSchemeError {
    /// Tree operation or replica replay failed.
    Core(CoreError),
    /// Client-side verification failed.
    Verify(VerifyError),
}

impl core::fmt::Display for VbSchemeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VbSchemeError::Core(e) => write!(f, "{e}"),
            VbSchemeError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VbSchemeError {}

impl From<CoreError> for VbSchemeError {
    fn from(e: CoreError) -> Self {
        VbSchemeError::Core(e)
    }
}

impl From<VerifyError> for VbSchemeError {
    fn from(e: VerifyError) -> Self {
        VbSchemeError::Verify(e)
    }
}

/// The paper's own scheme: the Verifiable B-tree.
#[derive(Clone)]
pub struct VbScheme<const L: usize> {
    /// Digest algebra (public group parameters).
    pub acc: Accumulator<L>,
    /// Tree geometry.
    pub config: VbTreeConfig,
}

impl<const L: usize> VbScheme<L> {
    /// A scheme descriptor from public parameters.
    pub fn new(acc: Accumulator<L>, config: VbTreeConfig) -> Self {
        Self { acc, config }
    }

    /// Compact (op-stream) counterpart of
    /// [`range_query`](AuthScheme::range_query). With an `aggregator`
    /// that supports signature aggregation, every shipped digest is
    /// bare and one condensed signature covers them all.
    pub fn range_query_compact(
        &self,
        store: &VbTree<L>,
        query: &RangeQuery,
        aggregator: Option<&dyn SigVerifier>,
    ) -> CompactResponse<L> {
        execute_multi_compact(store, std::slice::from_ref(query), None, aggregator)
    }

    /// Answer `k` ranges with **one** merged compact response: shared
    /// digests ship once via the dictionary and a single aggregate
    /// signature sweep replaces `k` independent signature sets.
    pub fn multi_query_compact(
        &self,
        store: &VbTree<L>,
        queries: &[RangeQuery],
        aggregator: Option<&dyn SigVerifier>,
    ) -> CompactResponse<L> {
        execute_multi_compact(store, queries, None, aggregator)
    }

    /// Client-side verification of a compact response — the scheme-level
    /// wrapper over [`ClientVerifier::verify_compact`].
    pub fn verify_compact(
        &self,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        queries: &[RangeQuery],
        resp: &CompactResponse<L>,
        meter: &mut CostMeter,
    ) -> Result<VerifiedBatch, VbSchemeError> {
        let client = ClientVerifier::new(&self.acc, schema);
        let report = client.verify_compact(verifier, queries, resp)?;
        meter.absorb(&report.meter);
        Ok(VerifiedBatch {
            rows: resp.parts.iter().flat_map(|p| p.rows.clone()).collect(),
            signatures_checked: report.signatures_checked,
        })
    }

    /// [`TamperMode`] against a compact response — the same simulated
    /// compromises [`AuthScheme::tamper`] applies to flat responses, so
    /// the detection matrix can be exercised on both encodings.
    pub fn tamper_compact(
        &self,
        store: &VbTree<L>,
        queries: &[RangeQuery],
        resp: &mut CompactResponse<L>,
        mode: &TamperMode,
        aggregator: Option<&dyn SigVerifier>,
    ) {
        let Some(part) = resp.parts.first_mut() else {
            return;
        };
        match mode {
            TamperMode::None => {}
            TamperMode::MutateValue => {
                if let Some(row) = part.rows.first_mut() {
                    mutate_first_value(&mut row.values);
                }
            }
            TamperMode::InjectRow => {
                // Keep the stream structurally consistent (one Row op
                // per row) so the *digest* check is what trips.
                let before = part.rows.len();
                inject_duplicate_last(&mut part.rows, |r| r.key += 1);
                if part.rows.len() > before {
                    part.ops.push(VoOp::Row);
                }
            }
            TamperMode::DropRow => {
                drop_middle_row(&mut part.rows);
                if let Some(pos) = part.ops.iter().rposition(|op| matches!(op, VoOp::Row)) {
                    part.ops.remove(pos);
                }
            }
            TamperMode::DropAndReclassify { key } => {
                let victim = *key;
                let pred = move |t: &Tuple| t.key != victim;
                *resp = execute_multi_compact(store, queries, Some(&pred), aggregator);
            }
        }
    }
}

impl<const L: usize> AuthScheme for VbScheme<L> {
    const NAME: &'static str = "vb-tree";

    type Store = VbTree<L>;
    type Response = QueryResponse<L>;
    type Vo = VerificationObject<L>;
    type Error = VbSchemeError;
    type Delta = Vec<SignedDigest<L>>;

    fn build(&self, table: &Table, signer: &dyn Signer) -> VbTree<L> {
        // Large builds fan the per-tuple digest work out across cores;
        // the resulting tree is identical to a sequential bulk_load.
        VbTree::bulk_load_parallel(
            table,
            self.config.clone(),
            self.acc.clone(),
            signer,
            crate::tree::default_build_threads(table.len()),
        )
    }

    fn range_query(&self, store: &VbTree<L>, query: &RangeQuery) -> QueryResponse<L> {
        execute(store, query, None)
    }

    fn update(
        &self,
        store: &mut VbTree<L>,
        op: &UpdateOp,
        signer: &dyn Signer,
    ) -> Result<Self::Delta, VbSchemeError> {
        let mut capture = Capture::new(signer);
        match op {
            UpdateOp::Insert(tuple) => {
                store.insert_with_source(tuple.clone(), &mut capture)?;
            }
            UpdateOp::Delete(key) => {
                store.delete_with_source(*key, &mut capture)?;
            }
            UpdateOp::DeleteRange(lo, hi) => {
                store.delete_range_with_source(*lo, *hi, &mut capture)?;
            }
        }
        Ok(capture.into_digests())
    }

    fn apply_delta(
        &self,
        store: &mut VbTree<L>,
        op: &UpdateOp,
        payload: &Self::Delta,
        key_version: u32,
    ) -> Result<(), VbSchemeError> {
        let mut src = ReplaySource::new(payload.clone(), key_version);
        match op {
            UpdateOp::Insert(tuple) => {
                store.insert_with_source(tuple.clone(), &mut src)?;
            }
            UpdateOp::Delete(key) => {
                store.delete_with_source(*key, &mut src)?;
            }
            UpdateOp::DeleteRange(lo, hi) => {
                store.delete_range_with_source(*lo, *hi, &mut src)?;
            }
        }
        if src.remaining() != 0 {
            return Err(CoreError::ReplicaDivergence(format!(
                "{} unused digests after replay",
                src.remaining()
            ))
            .into());
        }
        Ok(())
    }

    /// The Section 3.4 batch fast path: apply every op structurally
    /// with deferred (unsigned) digests — exponents mutate, nothing is
    /// signed — then run **one** signing sweep over the dirty nodes.
    /// `k` ops sharing root-to-leaf paths thus cost `O(dirty digests)`
    /// signatures instead of `k · O(height)`, and the packed payload is
    /// the sweep's digest stream (a single [`DeltaBatch`] payload).
    ///
    /// Atomic: on any op failure the store is restored to its pre-batch
    /// state (cheap — the node arena is copy-on-write).
    fn update_batch(
        &self,
        store: &mut VbTree<L>,
        ops: &[UpdateOp],
        signer: &dyn Signer,
    ) -> Result<Vec<Self::Delta>, VbSchemeError> {
        let backup = store.clone();
        let mut src = DeferredSource::new(signer.key_version());
        store.begin_dirty_tracking();
        for op in ops {
            let applied = match op {
                UpdateOp::Insert(tuple) => store
                    .insert_with_source(tuple.clone(), &mut src)
                    .map(|_| ()),
                UpdateOp::Delete(key) => store.delete_with_source(*key, &mut src).map(|_| ()),
                UpdateOp::DeleteRange(lo, hi) => store
                    .delete_range_with_source(*lo, *hi, &mut src)
                    .map(|_| ()),
            };
            if let Err(e) = applied {
                *store = backup;
                return Err(e.into());
            }
        }
        let dirty = store.take_dirty();
        Ok(vec![store.sign_dirty_nodes(&dirty, signer)])
    }

    /// Replay a group-committed batch: the same deferred structural
    /// replay, then one sweep consuming the packed payload's pre-signed
    /// digests in the central server's deterministic sweep order,
    /// checking every locally recomputed exponent. Any divergence (or a
    /// malformed payload, e.g. from a hostile wire) restores the
    /// pre-batch store and reports `ReplicaDivergence` — never panics.
    fn apply_delta_batch(
        &self,
        store: &mut VbTree<L>,
        ops: &[UpdateOp],
        payloads: &[Self::Delta],
        key_version: u32,
    ) -> Result<(), VbSchemeError> {
        let [payload] = payloads else {
            return Err(CoreError::ReplicaDivergence(format!(
                "vb-tree batch carries one packed payload, got {}",
                payloads.len()
            ))
            .into());
        };
        let backup = store.clone();
        let mut src = DeferredSource::new(key_version);
        store.begin_dirty_tracking();
        let replayed = (|| -> Result<(), CoreError> {
            for op in ops {
                match op {
                    UpdateOp::Insert(tuple) => {
                        store.insert_with_source(tuple.clone(), &mut src)?;
                    }
                    UpdateOp::Delete(key) => {
                        store.delete_with_source(*key, &mut src)?;
                    }
                    UpdateOp::DeleteRange(lo, hi) => {
                        store.delete_range_with_source(*lo, *hi, &mut src)?;
                    }
                }
            }
            let dirty = store.take_dirty();
            store.replay_dirty_nodes(&dirty, payload, key_version)
        })();
        if let Err(e) = replayed {
            *store = backup;
            return Err(e.into());
        }
        Ok(())
    }

    fn verify(
        &self,
        schema: &Schema,
        verifier: &dyn SigVerifier,
        query: &RangeQuery,
        resp: &QueryResponse<L>,
        meter: &mut CostMeter,
    ) -> Result<VerifiedBatch, VbSchemeError> {
        let client = ClientVerifier::new(&self.acc, schema);
        let report = client.verify(verifier, query, resp)?;
        meter.absorb(&report.meter);
        Ok(VerifiedBatch {
            rows: resp.rows.clone(),
            signatures_checked: report.signatures_checked,
        })
    }

    fn vo(resp: &QueryResponse<L>) -> VerificationObject<L> {
        resp.vo.clone()
    }

    fn response_rows(resp: &QueryResponse<L>) -> Vec<ResultRow> {
        resp.rows.clone()
    }

    fn response_wire_bytes(resp: &QueryResponse<L>) -> usize {
        measure_response(resp).total()
    }

    fn vo_digest_count(resp: &QueryResponse<L>) -> usize {
        resp.vo.digest_count()
    }

    fn response_key_version(resp: &QueryResponse<L>) -> u32 {
        resp.vo.key_version
    }

    fn stamp_freshness(resp: &mut QueryResponse<L>, freshness: &ResponseFreshness) {
        resp.freshness = freshness.clone();
    }

    fn response_freshness(resp: &QueryResponse<L>) -> Option<&ResponseFreshness> {
        Some(&resp.freshness)
    }

    fn tamper(
        &self,
        store: &VbTree<L>,
        query: &RangeQuery,
        resp: &mut QueryResponse<L>,
        mode: &TamperMode,
    ) {
        match mode {
            TamperMode::None => {}
            TamperMode::MutateValue => {
                if let Some(row) = resp.rows.first_mut() {
                    mutate_first_value(&mut row.values);
                }
            }
            TamperMode::InjectRow => {
                inject_duplicate_last(&mut resp.rows, |r| r.key += 1);
            }
            TamperMode::DropRow => {
                drop_middle_row(&mut resp.rows);
            }
            TamperMode::DropAndReclassify { key } => {
                // Re-execute with a predicate hiding the victim: its
                // signed tuple digest lands in D_S and the VO still
                // balances — the documented completeness boundary.
                let victim = *key;
                let pred = move |t: &Tuple| t.key != victim;
                *resp = execute(store, query, Some(&pred));
            }
        }
    }

    fn lock_targets(&self, store: &VbTree<L>, op: &UpdateOp) -> Vec<usize> {
        match op {
            UpdateOp::Insert(tuple) => store.path_node_ids(tuple.key),
            UpdateOp::Delete(key) => store.path_node_ids(*key),
            UpdateOp::DeleteRange(lo, hi) => store.envelope_node_ids(*lo, *hi),
        }
    }

    fn query_lock_targets(&self, store: &VbTree<L>, query: &RangeQuery) -> Vec<usize> {
        store.envelope_node_ids(query.lo, query.hi)
    }

    fn supports_projection(&self) -> bool {
        true
    }

    fn proves_completeness(&self) -> bool {
        false
    }

    fn sync_chunk_count(&self, store: &VbTree<L>) -> usize {
        TreeChunks::new(store).num_chunks()
    }

    fn encode_sync_chunk(&self, store: &VbTree<L>, index: usize) -> Result<Vec<u8>, SyncError> {
        TreeChunks::new(store).encode_chunk(index)
    }

    fn begin_restore(
        &self,
        verifier: std::sync::Arc<dyn SigVerifier>,
    ) -> Box<dyn StoreRestorer<VbTree<L>>> {
        Box::new(Restorer::new(self.acc.clone(), verifier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbx_crypto::signer::MockSigner;
    use vbx_crypto::Acc256;
    use vbx_storage::workload::WorkloadSpec;

    fn scheme() -> (VbScheme<4>, Table, MockSigner) {
        let table = WorkloadSpec::new(60, 4, 8).build();
        let signer = MockSigner::new(21);
        (
            VbScheme::new(Acc256::test_default(), VbTreeConfig::with_fanout(6)),
            table,
            signer,
        )
    }

    #[test]
    fn roundtrip_through_the_trait() {
        let (s, table, signer) = scheme();
        let store = s.build(&table, &signer);
        let q = RangeQuery::select_all(10, 30);
        let resp = s.range_query(&store, &q);
        let mut meter = CostMeter::new();
        let batch = s
            .verify(
                table.schema(),
                signer.verifier().as_ref(),
                &q,
                &resp,
                &mut meter,
            )
            .unwrap();
        assert_eq!(batch.rows.len(), 21);
        assert!(meter.verify_ops > 0);
        assert_eq!(batch.signatures_checked, meter.verify_ops as usize);
        assert_eq!(
            VbScheme::<4>::response_key_version(&resp),
            signer.key_version()
        );
        assert!(VbScheme::<4>::response_wire_bytes(&resp) > 0);
        assert_eq!(
            VbScheme::<4>::vo_digest_count(&resp),
            VbScheme::<4>::vo(&resp).digest_count()
        );
    }

    #[test]
    fn update_and_replay_through_the_trait() {
        let (s, table, signer) = scheme();
        let mut master = s.build(&table, &signer);
        let mut replica = s.build(&table, &signer);
        let schema = table.schema().clone();
        let tuple = Tuple::new(
            &schema,
            500,
            vec![
                Value::from("a"),
                Value::from("b"),
                Value::from("c"),
                Value::from(5i64),
            ],
        )
        .unwrap();
        let op = UpdateOp::Insert(tuple);
        let payload = s.update(&mut master, &op, &signer).unwrap();
        s.apply_delta(&mut replica, &op, &payload, signer.key_version())
            .unwrap();
        assert_eq!(master.root_digest().exp, replica.root_digest().exp);
    }

    #[test]
    fn tamper_modes_alter_or_rebalance_responses() {
        let (s, table, signer) = scheme();
        let store = s.build(&table, &signer);
        let q = RangeQuery::select_all(5, 45);
        let honest = s.range_query(&store, &q);
        let mut meter = CostMeter::new();

        for mode in [
            TamperMode::MutateValue,
            TamperMode::InjectRow,
            TamperMode::DropRow,
        ] {
            let mut resp = honest.clone();
            s.tamper(&store, &q, &mut resp, &mode);
            assert!(
                s.verify(
                    table.schema(),
                    signer.verifier().as_ref(),
                    &q,
                    &resp,
                    &mut meter
                )
                .is_err(),
                "{mode:?} must break verification"
            );
        }

        // Reclassification still verifies — the documented boundary.
        let mut resp = honest.clone();
        s.tamper(
            &store,
            &q,
            &mut resp,
            &TamperMode::DropAndReclassify { key: 20 },
        );
        assert!(resp.rows.iter().all(|r| r.key != 20));
        s.verify(
            table.schema(),
            signer.verifier().as_ref(),
            &q,
            &resp,
            &mut meter,
        )
        .unwrap();
    }

    #[test]
    fn lock_targets_follow_the_paths() {
        let (s, table, signer) = scheme();
        let store = s.build(&table, &signer);
        let ins = s.lock_targets(
            &store,
            &UpdateOp::Insert(table.iter().next().unwrap().clone()),
        );
        assert!(!ins.is_empty());
        let range = s.lock_targets(&store, &UpdateOp::DeleteRange(0, 59));
        assert!(range.len() >= ins.len());
    }
}
