//! Wire encoding of query responses and group-committed delta batches.
//!
//! The communication-cost experiments (Figures 10 and 11) charge the
//! exact serialized size of `result + VO`. This module defines that
//! format and measures it. The encoding is self-describing enough for the
//! client to decode without the schema; all authentication happens later
//! in [`crate::verify`].
//!
//! Format version 3 adds the [`DeltaBatch`] envelope (magic `VBX3`):
//! `k` update ops travelling from the central commit to the edge apply
//! under one signed payload stream and one owner freshness stamp. The
//! `VBX2` response encoding is unchanged and its decoder kept — the two
//! message types coexist on the wire, distinguished by magic.

use crate::scheme::{DeltaBatch, UpdateOp};
use crate::verify::{FreshnessStamp, ResponseFreshness};
use crate::vo::{QueryResponse, ResultRow, VerificationObject};
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::Signature;
use vbx_storage::{Tuple, Value};

/// Format version 2: v1 plus the trailing freshness section
/// (applied seq + optional owner stamp).
const MAGIC: &[u8; 4] = b"VBX2";

/// Format version 3: the group-commit [`DeltaBatch`] envelope.
const BATCH_MAGIC: &[u8; 4] = b"VBX3";

fn put_digest<const L: usize>(out: &mut Vec<u8>, d: &SignedDigest<L>) {
    out.push(d.role.to_tag());
    out.extend_from_slice(&d.exp.to_be_bytes());
    out.put_u16(d.sig.len() as u16);
    out.extend_from_slice(d.sig.as_bytes());
}

fn get_digest<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
) -> Result<SignedDigest<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 + L * 8 + 2 {
        return Err(corrupt("digest truncated"));
    }
    let role = DigestRole::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad role tag"))?;
    let exp_bytes = &buf[..L * 8];
    let exp = acc
        .exp_from_canonical(exp_bytes)
        .ok_or_else(|| corrupt("exponent out of range"))?;
    buf.advance(L * 8);
    let sig_len = buf.get_u16() as usize;
    if buf.remaining() < sig_len {
        return Err(corrupt("signature truncated"));
    }
    let sig = Signature(buf[..sig_len].to_vec());
    buf.advance(sig_len);
    Ok(SignedDigest { exp, role, sig })
}

/// Serialize a full response (rows + VO).
pub fn encode_response<const L: usize>(resp: &QueryResponse<L>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);

    // rows
    out.put_u32(resp.rows.len() as u32);
    for row in &resp.rows {
        out.put_u64(row.key);
        out.put_u16(row.values.len() as u16);
        for v in &row.values {
            v.encode_into(&mut out);
        }
    }

    // VO
    put_digest(&mut out, &resp.vo.top);
    out.put_u32(resp.vo.d_s.len() as u32);
    for d in &resp.vo.d_s {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.d_p.len() as u32);
    for d in &resp.vo.d_p {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.key_version);

    // freshness: applied seq, then an optional owner stamp
    out.put_u64(resp.freshness.applied_seq);
    put_stamp(&mut out, resp.freshness.stamp.as_ref());
    out
}

fn put_stamp(out: &mut Vec<u8>, stamp: Option<&FreshnessStamp>) {
    match stamp {
        None => out.push(0),
        Some(stamp) => {
            out.push(1);
            out.put_u64(stamp.seq);
            out.put_u64(stamp.clock);
            out.put_u32(stamp.key_version);
            out.put_u16(stamp.sig.len() as u16);
            out.extend_from_slice(stamp.sig.as_bytes());
        }
    }
}

/// Exact bytes [`put_stamp`] emits for the stamp alone (excluding the
/// presence tag): `seq + clock + key_version + sig_len + sig`, or 0
/// when absent.
pub fn stamp_wire_bytes(stamp: Option<&FreshnessStamp>) -> usize {
    stamp.map_or(0, |s| 8 + 8 + 4 + 2 + s.sig.len())
}

/// Exact wire size of a whole freshness section as every vbx encoding
/// frames it: advisory `applied_seq`, the stamp-presence tag, and the
/// optional stamp. The single source of truth for freshness byte
/// accounting — the baselines' `wire_bytes` delegate here so the
/// Figure 10/11 comparisons can never drift from the real encoding.
pub fn freshness_wire_bytes(freshness: &ResponseFreshness) -> usize {
    8 + 1 + stamp_wire_bytes(freshness.stamp.as_ref())
}

fn get_stamp(buf: &mut &[u8]) -> Result<Option<FreshnessStamp>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 {
        return Err(corrupt("freshness stamp tag truncated"));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 22 {
                return Err(corrupt("freshness stamp truncated"));
            }
            let seq = buf.get_u64();
            let clock = buf.get_u64();
            let key_version = buf.get_u32();
            let sig_len = buf.get_u16() as usize;
            if buf.remaining() < sig_len {
                return Err(corrupt("freshness signature truncated"));
            }
            let sig = Signature(buf[..sig_len].to_vec());
            buf.advance(sig_len);
            Ok(Some(FreshnessStamp {
                seq,
                clock,
                key_version,
                sig,
            }))
        }
        _ => Err(corrupt("bad freshness stamp tag")),
    }
}

/// Decode a response. `acc` supplies the group width and validates
/// exponent ranges.
pub fn decode_response<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<QueryResponse<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 8 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);

    let n_rows = buf.get_u32() as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        if buf.remaining() < 10 {
            return Err(corrupt("row truncated"));
        }
        let key = buf.get_u64();
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            values.push(Value::decode(&mut buf).map_err(CoreError::Storage)?);
        }
        rows.push(ResultRow { key, values });
    }

    let top = get_digest(&mut buf, acc)?;
    if buf.remaining() < 4 {
        return Err(corrupt("D_S header truncated"));
    }
    let n_ds = buf.get_u32() as usize;
    let mut d_s = Vec::with_capacity(n_ds.min(1 << 20));
    for _ in 0..n_ds {
        d_s.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("D_P header truncated"));
    }
    let n_dp = buf.get_u32() as usize;
    let mut d_p = Vec::with_capacity(n_dp.min(1 << 20));
    for _ in 0..n_dp {
        d_p.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("key version truncated"));
    }
    let key_version = buf.get_u32();

    if buf.remaining() < 9 {
        return Err(corrupt("freshness truncated"));
    }
    let applied_seq = buf.get_u64();
    let stamp = get_stamp(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(QueryResponse {
        rows,
        vo: VerificationObject {
            top,
            d_s,
            d_p,
            key_version,
        },
        freshness: ResponseFreshness { applied_seq, stamp },
    })
}

/// Serialize a group-committed delta batch — the `VBX3` envelope the
/// central server ships over the subscription transport: `k` update ops,
/// the scheme's packed signed-digest payload stream, and the optional
/// owner freshness stamp attesting the batch's end sequence.
pub fn encode_delta_batch<const L: usize>(batch: &DeltaBatch<Vec<SignedDigest<L>>>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(BATCH_MAGIC);
    out.put_u64(batch.start_seq);
    out.put_u32(batch.table.len() as u32);
    out.extend_from_slice(batch.table.as_bytes());
    out.put_u32(batch.key_version);

    out.put_u32(batch.ops.len() as u32);
    for op in &batch.ops {
        match op {
            UpdateOp::Insert(tuple) => {
                out.push(0);
                tuple.encode_into(&mut out);
            }
            UpdateOp::Delete(key) => {
                out.push(1);
                out.put_u64(*key);
            }
            UpdateOp::DeleteRange(lo, hi) => {
                out.push(2);
                out.put_u64(*lo);
                out.put_u64(*hi);
            }
        }
    }

    out.put_u32(batch.payloads.len() as u32);
    for payload in &batch.payloads {
        out.put_u32(payload.len() as u32);
        for d in payload {
            put_digest(&mut out, d);
        }
    }

    put_stamp(&mut out, batch.stamp.as_ref());
    out
}

/// Decode a `VBX3` delta batch. Structurally hostile input (truncation,
/// lying counters, bad tags, trailing bytes) errors and never panics;
/// *semantically* hostile input — consistent bytes carrying forged ops
/// or digests — is caught later, by the replica's replay divergence
/// check and by the stamp/digest signatures.
pub fn decode_delta_batch<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<DeltaBatch<Vec<SignedDigest<L>>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != BATCH_MAGIC {
        return Err(corrupt("bad batch magic"));
    }
    buf.advance(4);
    if buf.remaining() < 12 {
        return Err(corrupt("batch header truncated"));
    }
    let start_seq = buf.get_u64();
    let table_len = buf.get_u32() as usize;
    if buf.remaining() < table_len {
        return Err(corrupt("table name truncated"));
    }
    let table = core::str::from_utf8(&buf[..table_len])
        .map_err(|_| corrupt("table name not UTF-8"))?
        .to_string();
    buf.advance(table_len);
    if buf.remaining() < 8 {
        return Err(corrupt("batch key version truncated"));
    }
    let key_version = buf.get_u32();

    let n_ops = buf.get_u32() as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
    for _ in 0..n_ops {
        if buf.remaining() < 1 {
            return Err(corrupt("op truncated"));
        }
        ops.push(match buf.get_u8() {
            0 => UpdateOp::Insert(Tuple::decode(&mut buf).map_err(CoreError::Storage)?),
            1 => {
                if buf.remaining() < 8 {
                    return Err(corrupt("delete key truncated"));
                }
                UpdateOp::Delete(buf.get_u64())
            }
            2 => {
                if buf.remaining() < 16 {
                    return Err(corrupt("delete range truncated"));
                }
                UpdateOp::DeleteRange(buf.get_u64(), buf.get_u64())
            }
            _ => return Err(corrupt("bad op tag")),
        });
    }

    if buf.remaining() < 4 {
        return Err(corrupt("payload header truncated"));
    }
    let n_payloads = buf.get_u32() as usize;
    let mut payloads = Vec::with_capacity(n_payloads.min(1 << 16));
    for _ in 0..n_payloads {
        if buf.remaining() < 4 {
            return Err(corrupt("payload digest count truncated"));
        }
        let n_digests = buf.get_u32() as usize;
        let mut digests = Vec::with_capacity(n_digests.min(1 << 20));
        for _ in 0..n_digests {
            digests.push(get_digest(&mut buf, acc)?);
        }
        payloads.push(digests);
    }

    let stamp = get_stamp(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in batch"));
    }
    Ok(DeltaBatch {
        start_seq,
        table,
        ops,
        payloads,
        key_version,
        stamp,
    })
}

/// Byte-size breakdown of a response — the quantities plotted in
/// Figures 10 and 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseSize {
    /// Serialized result rows.
    pub result_bytes: usize,
    /// Serialized verification object.
    pub vo_bytes: usize,
    /// Framing overhead (magic, counters).
    pub framing_bytes: usize,
}

impl ResponseSize {
    /// Total bytes on the wire.
    pub fn total(&self) -> usize {
        self.result_bytes + self.vo_bytes + self.framing_bytes
    }
}

/// Measure a response without keeping the serialized buffer.
pub fn measure_response<const L: usize>(resp: &QueryResponse<L>) -> ResponseSize {
    let result_bytes: usize = resp
        .rows
        .iter()
        .map(|r| 10 + r.values.iter().map(Value::wire_len).sum::<usize>())
        .sum();
    let digest_len = |d: &SignedDigest<L>| 1 + L * 8 + 2 + d.sig.len();
    let stamp_bytes = stamp_wire_bytes(resp.freshness.stamp.as_ref());
    let vo_bytes = digest_len(&resp.vo.top)
        + resp.vo.d_s.iter().map(digest_len).sum::<usize>()
        + resp.vo.d_p.iter().map(digest_len).sum::<usize>()
        + 4 // key version
        + stamp_bytes;
    ResponseSize {
        result_bytes,
        vo_bytes,
        // magic + row count + D_S/D_P counters + applied seq + stamp tag
        framing_bytes: 4 + 4 + 4 + 4 + 8 + 1,
    }
}
