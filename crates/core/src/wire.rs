//! Wire encoding of query responses and group-committed delta batches.
//!
//! The communication-cost experiments (Figures 10 and 11) charge the
//! exact serialized size of `result + VO`. This module defines that
//! format and measures it. The encoding is self-describing enough for the
//! client to decode without the schema; all authentication happens later
//! in [`crate::verify`].
//!
//! Format version 3 adds the [`DeltaBatch`] envelope (magic `VBX3`):
//! `k` update ops travelling from the central commit to the edge apply
//! under one signed payload stream and one owner freshness stamp. The
//! `VBX2` response encoding is unchanged and its decoder kept — the two
//! message types coexist on the wire, distinguished by magic.

use crate::frame::{get_sig, get_str, put_sig, put_str};
use crate::scheme::{DeltaBatch, SignedDelta, TxnBatch, UpdateOp};
use crate::verify::{FreshnessStamp, ResponseFreshness};
use crate::vo::{CompactPart, CompactResponse, QueryResponse, ResultRow, VerificationObject, VoOp};
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::Signature;
use vbx_storage::{Tuple, Value};

/// Format version 2: v1 plus the trailing freshness section
/// (applied seq + optional owner stamp).
const MAGIC: &[u8; 4] = b"VBX2";

/// Format version 3: the group-commit [`DeltaBatch`] envelope.
const BATCH_MAGIC: &[u8; 4] = b"VBX3";

/// Format version 4: the compact stack-machine VO envelope
/// ([`CompactResponse`]). `VBX2`/`VBX3` stay on the wire unchanged;
/// the four magics disambiguate.
const COMPACT_MAGIC: &[u8; 4] = b"VBX4";

/// Format version 6: a single un-batched [`SignedDelta`] — the per-op
/// counterpart of `VBX3` for the framed subscription stream. (`VBX5`
/// is the frame layer itself, in [`crate::frame`].)
const DELTA_MAGIC: &[u8; 4] = b"VBX6";

/// Format version 7: the atomic multi-table [`TxnBatch`] envelope —
/// every touched table's `VBX3`-shaped section under **one** magic,
/// one contiguous seq range, and one trailing freshness stamp.
const TXN_MAGIC: &[u8; 4] = b"VBX7";

/// `VBX4` op tags.
const OP_BEGIN: u8 = 0x01;
const OP_END: u8 = 0x02;
const OP_PUSH: u8 = 0x03;
const OP_ROW: u8 = 0x04;
const OP_REF: u8 = 0x05;

pub(crate) fn put_digest<const L: usize>(out: &mut Vec<u8>, d: &SignedDigest<L>) {
    out.push(d.role.to_tag());
    out.extend_from_slice(&d.exp.to_be_bytes());
    put_sig(out, &d.sig);
}

pub(crate) fn get_digest<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
) -> Result<SignedDigest<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 + L * 8 {
        return Err(corrupt("digest truncated"));
    }
    let role = DigestRole::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad role tag"))?;
    let exp_bytes = &buf[..L * 8];
    let exp = acc
        .exp_from_canonical(exp_bytes)
        .ok_or_else(|| corrupt("exponent out of range"))?;
    buf.advance(L * 8);
    let sig = get_sig(buf, "digest signature")?;
    Ok(SignedDigest { exp, role, sig })
}

/// Serialize a full response (rows + VO).
pub fn encode_response<const L: usize>(resp: &QueryResponse<L>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);

    // rows
    out.put_u32(resp.rows.len() as u32);
    for row in &resp.rows {
        out.put_u64(row.key);
        out.put_u16(row.values.len() as u16);
        for v in &row.values {
            v.encode_into(&mut out);
        }
    }

    // VO
    put_digest(&mut out, &resp.vo.top);
    out.put_u32(resp.vo.d_s.len() as u32);
    for d in &resp.vo.d_s {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.d_p.len() as u32);
    for d in &resp.vo.d_p {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.key_version);

    // freshness: applied seq, then an optional owner stamp
    out.put_u64(resp.freshness.applied_seq);
    put_stamp(&mut out, resp.freshness.stamp.as_ref());
    out
}

pub(crate) fn put_stamp(out: &mut Vec<u8>, stamp: Option<&FreshnessStamp>) {
    match stamp {
        None => out.push(0),
        Some(stamp) => {
            out.push(1);
            out.put_u64(stamp.seq);
            out.put_u64(stamp.clock);
            out.put_u32(stamp.key_version);
            put_sig(out, &stamp.sig);
        }
    }
}

/// Exact bytes [`put_stamp`] emits for the stamp alone (excluding the
/// presence tag): `seq + clock + key_version + sig_len + sig`, or 0
/// when absent.
pub fn stamp_wire_bytes(stamp: Option<&FreshnessStamp>) -> usize {
    stamp.map_or(0, |s| 8 + 8 + 4 + 2 + s.sig.len())
}

/// Exact wire size of a whole freshness section as every vbx encoding
/// frames it: advisory `applied_seq`, the stamp-presence tag, and the
/// optional stamp. The single source of truth for freshness byte
/// accounting — the baselines' `wire_bytes` delegate here so the
/// Figure 10/11 comparisons can never drift from the real encoding.
pub fn freshness_wire_bytes(freshness: &ResponseFreshness) -> usize {
    8 + 1 + stamp_wire_bytes(freshness.stamp.as_ref())
}

pub(crate) fn get_stamp(buf: &mut &[u8]) -> Result<Option<FreshnessStamp>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 {
        return Err(corrupt("freshness stamp tag truncated"));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 20 {
                return Err(corrupt("freshness stamp truncated"));
            }
            let seq = buf.get_u64();
            let clock = buf.get_u64();
            let key_version = buf.get_u32();
            let sig = get_sig(buf, "freshness signature")?;
            Ok(Some(FreshnessStamp {
                seq,
                clock,
                key_version,
                sig,
            }))
        }
        _ => Err(corrupt("bad freshness stamp tag")),
    }
}

/// Decode a response. `acc` supplies the group width and validates
/// exponent ranges.
pub fn decode_response<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<QueryResponse<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 8 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);

    let n_rows = buf.get_u32() as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        if buf.remaining() < 10 {
            return Err(corrupt("row truncated"));
        }
        let key = buf.get_u64();
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            values.push(Value::decode(&mut buf).map_err(CoreError::Storage)?);
        }
        rows.push(ResultRow { key, values });
    }

    let top = get_digest(&mut buf, acc)?;
    if buf.remaining() < 4 {
        return Err(corrupt("D_S header truncated"));
    }
    let n_ds = buf.get_u32() as usize;
    let mut d_s = Vec::with_capacity(n_ds.min(1 << 20));
    for _ in 0..n_ds {
        d_s.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("D_P header truncated"));
    }
    let n_dp = buf.get_u32() as usize;
    let mut d_p = Vec::with_capacity(n_dp.min(1 << 20));
    for _ in 0..n_dp {
        d_p.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("key version truncated"));
    }
    let key_version = buf.get_u32();

    if buf.remaining() < 9 {
        return Err(corrupt("freshness truncated"));
    }
    let applied_seq = buf.get_u64();
    let stamp = get_stamp(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(QueryResponse {
        rows,
        vo: VerificationObject {
            top,
            d_s,
            d_p,
            key_version,
        },
        freshness: ResponseFreshness { applied_seq, stamp },
    })
}

/// Encode one [`UpdateOp`] (tag byte + operands). Shared by the `VBX3`
/// batch envelope and the durability WAL records so both streams frame
/// ops identically.
pub(crate) fn put_update_op(out: &mut Vec<u8>, op: &UpdateOp) {
    match op {
        UpdateOp::Insert(tuple) => {
            out.push(0);
            tuple.encode_into(out);
        }
        UpdateOp::Delete(key) => {
            out.push(1);
            out.put_u64(*key);
        }
        UpdateOp::DeleteRange(lo, hi) => {
            out.push(2);
            out.put_u64(*lo);
            out.put_u64(*hi);
        }
    }
}

/// Decode one [`UpdateOp`], advancing `buf`.
pub(crate) fn get_update_op(buf: &mut &[u8]) -> Result<UpdateOp, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 {
        return Err(corrupt("op truncated"));
    }
    Ok(match buf.get_u8() {
        0 => UpdateOp::Insert(Tuple::decode(buf).map_err(CoreError::Storage)?),
        1 => {
            if buf.remaining() < 8 {
                return Err(corrupt("delete key truncated"));
            }
            UpdateOp::Delete(buf.get_u64())
        }
        2 => {
            if buf.remaining() < 16 {
                return Err(corrupt("delete range truncated"));
            }
            UpdateOp::DeleteRange(buf.get_u64(), buf.get_u64())
        }
        _ => return Err(corrupt("bad op tag")),
    })
}

/// Encode one stamp-less batch section (the `VBX3` body between magic
/// and stamp) — shared by the batch and txn envelopes.
fn put_batch_section<const L: usize>(out: &mut Vec<u8>, batch: &DeltaBatch<Vec<SignedDigest<L>>>) {
    out.put_u64(batch.start_seq);
    put_str(out, &batch.table);
    out.put_u32(batch.key_version);

    out.put_u32(batch.ops.len() as u32);
    for op in &batch.ops {
        put_update_op(out, op);
    }

    out.put_u32(batch.payloads.len() as u32);
    for payload in &batch.payloads {
        out.put_u32(payload.len() as u32);
        for d in payload {
            put_digest(out, d);
        }
    }
}

/// Decode one batch section written by [`put_batch_section`], advancing
/// `buf`. The returned batch carries no stamp.
fn get_batch_section<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
) -> Result<DeltaBatch<Vec<SignedDigest<L>>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 8 {
        return Err(corrupt("batch header truncated"));
    }
    let start_seq = buf.get_u64();
    let table = get_str(buf, "table name")?;
    if buf.remaining() < 8 {
        return Err(corrupt("batch key version truncated"));
    }
    let key_version = buf.get_u32();

    let n_ops = buf.get_u32() as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1 << 16));
    for _ in 0..n_ops {
        ops.push(get_update_op(buf)?);
    }

    if buf.remaining() < 4 {
        return Err(corrupt("payload header truncated"));
    }
    let n_payloads = buf.get_u32() as usize;
    let mut payloads = Vec::with_capacity(n_payloads.min(1 << 16));
    for _ in 0..n_payloads {
        if buf.remaining() < 4 {
            return Err(corrupt("payload digest count truncated"));
        }
        let n_digests = buf.get_u32() as usize;
        let mut digests = Vec::with_capacity(n_digests.min(1 << 20));
        for _ in 0..n_digests {
            digests.push(get_digest(buf, acc)?);
        }
        payloads.push(digests);
    }

    Ok(DeltaBatch {
        start_seq,
        table,
        ops,
        payloads,
        key_version,
        stamp: None,
    })
}

/// Serialize a group-committed delta batch — the `VBX3` envelope the
/// central server ships over the subscription transport: `k` update ops,
/// the scheme's packed signed-digest payload stream, and the optional
/// owner freshness stamp attesting the batch's end sequence.
pub fn encode_delta_batch<const L: usize>(batch: &DeltaBatch<Vec<SignedDigest<L>>>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(BATCH_MAGIC);
    put_batch_section(&mut out, batch);
    put_stamp(&mut out, batch.stamp.as_ref());
    out
}

/// Decode a `VBX3` delta batch. Structurally hostile input (truncation,
/// lying counters, bad tags, trailing bytes) errors and never panics;
/// *semantically* hostile input — consistent bytes carrying forged ops
/// or digests — is caught later, by the replica's replay divergence
/// check and by the stamp/digest signatures.
pub fn decode_delta_batch<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<DeltaBatch<Vec<SignedDigest<L>>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != BATCH_MAGIC {
        return Err(corrupt("bad batch magic"));
    }
    buf.advance(4);
    let mut batch = get_batch_section(&mut buf, acc)?;
    batch.stamp = get_stamp(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in batch"));
    }
    Ok(batch)
}

/// Serialize an atomic multi-table transaction — the `VBX7` envelope
/// the central ships so every shard owner receives the whole txn as
/// **one** message: each touched table's packed sweep as a stamp-less
/// `VBX3`-shaped section, plus one trailing owner stamp attesting the
/// txn's end sequence.
pub fn encode_txn_batch<const L: usize>(txn: &TxnBatch<Vec<SignedDigest<L>>>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024 * txn.sections.len().max(1));
    out.extend_from_slice(TXN_MAGIC);
    out.put_u32(txn.sections.len() as u32);
    for section in &txn.sections {
        put_batch_section(&mut out, section);
    }
    put_stamp(&mut out, txn.stamp.as_ref());
    out
}

/// Decode a `VBX7` txn envelope. Same hostile-input contract as
/// [`decode_delta_batch`]; additionally rejects envelopes whose
/// sections do not chain into one contiguous seq range — an edge must
/// never apply a gapped or empty txn.
pub fn decode_txn_batch<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<TxnBatch<Vec<SignedDigest<L>>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != TXN_MAGIC {
        return Err(corrupt("bad txn magic"));
    }
    buf.advance(4);
    if buf.remaining() < 4 {
        return Err(corrupt("txn section count truncated"));
    }
    let n_sections = buf.get_u32() as usize;
    let mut sections = Vec::with_capacity(n_sections.min(1 << 12));
    for _ in 0..n_sections {
        sections.push(get_batch_section(&mut buf, acc)?);
    }
    let stamp = get_stamp(&mut buf)?;
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in txn"));
    }
    let txn = TxnBatch { sections, stamp };
    if !txn.is_contiguous() {
        return Err(corrupt("txn sections not contiguous"));
    }
    Ok(txn)
}

/// Serialize a single [`SignedDelta`] — the `VBX6` envelope one
/// un-batched update travels under on the subscription stream (batches
/// use `VBX3`; the two coexist on the wire, distinguished by magic).
pub fn encode_signed_delta<const L: usize>(delta: &SignedDelta<Vec<SignedDigest<L>>>) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(DELTA_MAGIC);
    out.put_u64(delta.seq);
    put_str(&mut out, &delta.table);
    out.put_u32(delta.key_version);
    put_update_op(&mut out, &delta.op);
    out.put_u32(delta.payload.len() as u32);
    for d in &delta.payload {
        put_digest(&mut out, d);
    }
    out
}

/// Decode a `VBX6` single signed delta. Same hostile-input contract as
/// [`decode_delta_batch`].
pub fn decode_signed_delta<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<SignedDelta<Vec<SignedDigest<L>>>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 4 || &buf[..4] != DELTA_MAGIC {
        return Err(corrupt("bad delta magic"));
    }
    buf.advance(4);
    if buf.remaining() < 8 {
        return Err(corrupt("delta header truncated"));
    }
    let seq = buf.get_u64();
    let table = get_str(&mut buf, "table name")?;
    if buf.remaining() < 4 {
        return Err(corrupt("delta key version truncated"));
    }
    let key_version = buf.get_u32();
    let op = get_update_op(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(corrupt("payload digest count truncated"));
    }
    let n_digests = buf.get_u32() as usize;
    let mut payload = Vec::with_capacity(n_digests.min(1 << 20));
    for _ in 0..n_digests {
        payload.push(get_digest(&mut buf, acc)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in delta"));
    }
    Ok(SignedDelta {
        seq,
        table,
        op,
        payload,
        key_version,
    })
}

/// Byte-size breakdown of a response — the quantities plotted in
/// Figures 10 and 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseSize {
    /// Serialized result rows.
    pub result_bytes: usize,
    /// Serialized verification object.
    pub vo_bytes: usize,
    /// Framing overhead (magic, counters).
    pub framing_bytes: usize,
}

impl ResponseSize {
    /// Total bytes on the wire.
    pub fn total(&self) -> usize {
        self.result_bytes + self.vo_bytes + self.framing_bytes
    }
}

/// Measure a response without keeping the serialized buffer.
pub fn measure_response<const L: usize>(resp: &QueryResponse<L>) -> ResponseSize {
    let result_bytes: usize = resp
        .rows
        .iter()
        .map(|r| 10 + r.values.iter().map(Value::wire_len).sum::<usize>())
        .sum();
    let digest_len = |d: &SignedDigest<L>| 1 + L * 8 + 2 + d.sig.len();
    let stamp_bytes = stamp_wire_bytes(resp.freshness.stamp.as_ref());
    let vo_bytes = digest_len(&resp.vo.top)
        + resp.vo.d_s.iter().map(digest_len).sum::<usize>()
        + resp.vo.d_p.iter().map(digest_len).sum::<usize>()
        + 4 // key version
        + stamp_bytes;
    ResponseSize {
        result_bytes,
        vo_bytes,
        // magic + row count + D_S/D_P counters + applied seq + stamp tag
        framing_bytes: 4 + 4 + 4 + 4 + 8 + 1,
    }
}

// ---------------------------------------------------------------------
// VBX4 — compact stack-machine VO envelope
// ---------------------------------------------------------------------
//
// Layout (all integers big-endian):
//
// ```text
// "VBX4" | key_version u32
// | dict_count u32 | dict entries (role u8, exp L*8, sig_len u16, sig)
// | agg_flag u8 [| sig_len u16 | sig]
// | part_count u32
// | per part: top digest, row_count u32, op_count u32, ops…
// | applied_seq u64 | stamp
// ```
//
// The dictionary and aggregate signature come *before* the parts so a
// streaming verifier makes one forward pass buffering only the
// dictionary; the freshness tail comes *last* so an edge can cache the
// response prefix and append its current freshness per request. `Row`
// ops carry their row payload inline — the stream needs no side table.

/// Serialize everything of a compact response **except** the freshness
/// tail. This is the cacheable prefix: an edge stores these bytes once
/// and stitches a current freshness tail onto each request with
/// [`compact_response_bytes`].
pub fn encode_compact_prefix<const L: usize>(resp: &CompactResponse<L>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(COMPACT_MAGIC);
    out.put_u32(resp.key_version);

    out.put_u32(resp.dict.len() as u32);
    for d in &resp.dict {
        put_digest(&mut out, d);
    }

    match &resp.agg_sig {
        None => out.push(0),
        Some(sig) => {
            out.push(1);
            put_sig(&mut out, sig);
        }
    }

    out.put_u32(resp.parts.len() as u32);
    for part in &resp.parts {
        put_digest(&mut out, &part.top);
        out.put_u32(part.rows.len() as u32);
        out.put_u32(part.ops.len() as u32);
        let mut next_row = 0usize;
        for op in &part.ops {
            match op {
                VoOp::Begin => out.push(OP_BEGIN),
                VoOp::End => out.push(OP_END),
                VoOp::Push(d) => {
                    out.push(OP_PUSH);
                    put_digest(&mut out, d);
                }
                VoOp::Row => {
                    let row = &part.rows[next_row];
                    next_row += 1;
                    out.push(OP_ROW);
                    out.put_u64(row.key);
                    out.put_u16(row.values.len() as u16);
                    for v in &row.values {
                        v.encode_into(&mut out);
                    }
                }
                VoOp::Ref(i) => {
                    out.push(OP_REF);
                    out.put_u32(*i);
                }
            }
        }
        debug_assert_eq!(next_row, part.rows.len(), "Row ops must cover all rows");
    }
    out
}

/// Stitch a freshness tail onto a cached `VBX4` prefix, producing the
/// full wire buffer.
pub fn compact_response_bytes(prefix: &[u8], freshness: &ResponseFreshness) -> Vec<u8> {
    let mut out = Vec::with_capacity(prefix.len() + 32);
    out.extend_from_slice(prefix);
    out.put_u64(freshness.applied_seq);
    put_stamp(&mut out, freshness.stamp.as_ref());
    out
}

/// Serialize a full compact response (prefix + its own freshness tail).
pub fn encode_compact_response<const L: usize>(resp: &CompactResponse<L>) -> Vec<u8> {
    compact_response_bytes(&encode_compact_prefix(resp), &resp.freshness)
}

/// Decode and fully materialise a `VBX4` buffer. Structurally hostile
/// input (truncation, lying counters, bad tags, trailing bytes) errors
/// and never panics; forged digests and rows are caught later by
/// [`crate::verify::ClientVerifier::verify_compact`].
pub fn decode_compact_response<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<CompactResponse<L>, CoreError> {
    let mut stream = CompactStream::<L>::open(bytes, acc)?;
    let mut parts = Vec::with_capacity((stream.part_count() as usize).min(1 << 16));
    for _ in 0..stream.part_count() {
        let header = stream.begin_part()?;
        let mut rows = Vec::with_capacity((header.row_count as usize).min(1 << 20));
        let mut ops = Vec::with_capacity((header.op_count as usize).min(1 << 20));
        for _ in 0..header.op_count {
            ops.push(match stream.next_op()? {
                StreamOp::Begin => VoOp::Begin,
                StreamOp::End => VoOp::End,
                StreamOp::Push(d) => VoOp::Push(d),
                StreamOp::Ref(i) => VoOp::Ref(i),
                StreamOp::Row(row) => {
                    rows.push(row);
                    VoOp::Row
                }
            });
        }
        if rows.len() != header.row_count as usize {
            return Err(CoreError::Wire("row count does not match Row ops".into()));
        }
        parts.push(CompactPart {
            rows,
            top: header.top,
            ops,
        });
    }
    let dict = stream.dict().to_vec();
    let agg_sig = stream.agg_sig().cloned();
    let key_version = stream.key_version();
    let freshness = stream.finish()?;
    Ok(CompactResponse {
        parts,
        dict,
        agg_sig,
        key_version,
        freshness,
    })
}

/// One decoded op off a `VBX4` stream. Unlike [`VoOp`], `Row` carries
/// its payload — the wire interleaves rows into the op stream so a
/// streaming verifier needs a single forward cursor.
#[derive(Clone, Debug)]
pub enum StreamOp<const L: usize> {
    /// Push a fresh digest frame.
    Begin,
    /// Pop the current frame and fold it into its parent.
    End,
    /// Fold a shipped digest into the innermost frame.
    Push(SignedDigest<L>),
    /// The next result row, inline.
    Row(ResultRow),
    /// Fold the dictionary entry at this index.
    Ref(u32),
}

/// Header of one part in a `VBX4` stream.
#[derive(Clone, Debug)]
pub struct StreamPartHeader<const L: usize> {
    /// The part's signed top digest.
    pub top: SignedDigest<L>,
    /// Result rows the part's op stream will yield.
    pub row_count: u32,
    /// Ops in the part's stream.
    pub op_count: u32,
}

/// Incremental decoder for a `VBX4` buffer: [`open`](Self::open) parses
/// the header and dictionary, then the caller alternates
/// [`begin_part`](Self::begin_part) and [`next_op`](Self::next_op) and
/// ends with [`finish`](Self::finish) for the freshness tail. Only the
/// dictionary is buffered — this is what gives
/// `ClientVerifier::verify_compact_stream` its O(depth) memory bound.
pub struct CompactStream<'a, const L: usize> {
    buf: &'a [u8],
    acc: &'a Accumulator<L>,
    dict: Vec<SignedDigest<L>>,
    agg_sig: Option<Signature>,
    key_version: u32,
    part_count: u32,
    parts_begun: u32,
    ops_left: u32,
}

impl<'a, const L: usize> CompactStream<'a, L> {
    /// Parse the envelope header, dictionary, and aggregate signature.
    pub fn open(bytes: &'a [u8], acc: &'a Accumulator<L>) -> Result<Self, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        let mut buf = bytes;
        if buf.remaining() < 8 || &buf[..4] != COMPACT_MAGIC {
            return Err(corrupt("bad compact magic"));
        }
        buf.advance(4);
        let key_version = buf.get_u32();

        if buf.remaining() < 4 {
            return Err(corrupt("dictionary header truncated"));
        }
        let n_dict = buf.get_u32() as usize;
        let mut dict = Vec::with_capacity(n_dict.min(1 << 20));
        for _ in 0..n_dict {
            dict.push(get_digest(&mut buf, acc)?);
        }

        if buf.remaining() < 1 {
            return Err(corrupt("aggregate flag truncated"));
        }
        let agg_sig = match buf.get_u8() {
            0 => None,
            1 => Some(get_sig(&mut buf, "aggregate signature")?),
            _ => return Err(corrupt("bad aggregate flag")),
        };

        if buf.remaining() < 4 {
            return Err(corrupt("part count truncated"));
        }
        let part_count = buf.get_u32();
        Ok(Self {
            buf,
            acc,
            dict,
            agg_sig,
            key_version,
            part_count,
            parts_begun: 0,
            ops_left: 0,
        })
    }

    /// Parts announced by the envelope.
    pub fn part_count(&self) -> u32 {
        self.part_count
    }

    /// Key version the digests were signed under.
    pub fn key_version(&self) -> u32 {
        self.key_version
    }

    /// The single condensed signature, when present.
    pub fn agg_sig(&self) -> Option<&Signature> {
        self.agg_sig.as_ref()
    }

    /// The shared digest dictionary (the stream's only buffered state).
    pub fn dict(&self) -> &[SignedDigest<L>] {
        &self.dict
    }

    /// Advance to the next part's header. Errors if the current part
    /// still has undrained ops or every part was already begun.
    pub fn begin_part(&mut self) -> Result<StreamPartHeader<L>, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        if self.ops_left != 0 {
            return Err(corrupt("part begun with ops undrained"));
        }
        if self.parts_begun == self.part_count {
            return Err(corrupt("no parts left"));
        }
        let top = get_digest(&mut self.buf, self.acc)?;
        if self.buf.remaining() < 8 {
            return Err(corrupt("part header truncated"));
        }
        let row_count = self.buf.get_u32();
        let op_count = self.buf.get_u32();
        self.parts_begun += 1;
        self.ops_left = op_count;
        Ok(StreamPartHeader {
            top,
            row_count,
            op_count,
        })
    }

    /// Decode the next op of the current part.
    pub fn next_op(&mut self) -> Result<StreamOp<L>, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        if self.ops_left == 0 {
            return Err(corrupt("no ops left in part"));
        }
        self.ops_left -= 1;
        if self.buf.remaining() < 1 {
            return Err(corrupt("op truncated"));
        }
        Ok(match self.buf.get_u8() {
            OP_BEGIN => StreamOp::Begin,
            OP_END => StreamOp::End,
            OP_PUSH => StreamOp::Push(get_digest(&mut self.buf, self.acc)?),
            OP_ROW => {
                if self.buf.remaining() < 10 {
                    return Err(corrupt("row truncated"));
                }
                let key = self.buf.get_u64();
                let arity = self.buf.get_u16() as usize;
                let mut values = Vec::with_capacity(arity.min(1 << 16));
                for _ in 0..arity {
                    values.push(Value::decode(&mut self.buf).map_err(CoreError::Storage)?);
                }
                StreamOp::Row(ResultRow { key, values })
            }
            OP_REF => {
                if self.buf.remaining() < 4 {
                    return Err(corrupt("dictionary reference truncated"));
                }
                StreamOp::Ref(self.buf.get_u32())
            }
            _ => return Err(corrupt("bad op tag")),
        })
    }

    /// Consume the freshness tail and check nothing trails it. Errors
    /// if parts or ops remain undrained.
    pub fn finish(mut self) -> Result<ResponseFreshness, CoreError> {
        let corrupt = |m: &str| CoreError::Wire(m.to_string());
        if self.ops_left != 0 || self.parts_begun != self.part_count {
            return Err(corrupt("stream finished with parts undrained"));
        }
        if self.buf.remaining() < 9 {
            return Err(corrupt("freshness truncated"));
        }
        let applied_seq = self.buf.get_u64();
        let stamp = get_stamp(&mut self.buf)?;
        if self.buf.has_remaining() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(ResponseFreshness { applied_seq, stamp })
    }
}

/// Measure a compact response without keeping the serialized buffer —
/// the `vo_bytes_compact` quantity the benches compare against the
/// legacy flat encoding's `vo_bytes`.
pub fn measure_compact<const L: usize>(resp: &CompactResponse<L>) -> ResponseSize {
    let digest_len = |d: &SignedDigest<L>| 1 + L * 8 + 2 + d.sig.len();
    let mut result_bytes = 0usize;
    // Key version counted in vo_bytes, matching [`measure_response`].
    let mut vo_bytes = resp.dict.iter().map(digest_len).sum::<usize>()
        + resp.agg_sig.as_ref().map_or(0, |sig| 2 + sig.len())
        + 4
        + stamp_wire_bytes(resp.freshness.stamp.as_ref());
    // magic, dict count, agg flag, part count, applied seq, stamp tag
    let mut framing_bytes = 4 + 4 + 1 + 4 + 8 + 1;
    for part in &resp.parts {
        vo_bytes += digest_len(&part.top);
        framing_bytes += 4 + 4; // row count + op count
        for op in &part.ops {
            match op {
                VoOp::Begin | VoOp::End => vo_bytes += 1,
                VoOp::Push(d) => vo_bytes += 1 + digest_len(d),
                // The Row tag replaces the flat encoding's external row
                // framing — it marks a row, it ships no auth material.
                VoOp::Row => framing_bytes += 1,
                VoOp::Ref(_) => vo_bytes += 1 + 4,
            }
        }
        result_bytes += part
            .rows
            .iter()
            .map(|r| 10 + r.values.iter().map(Value::wire_len).sum::<usize>())
            .sum::<usize>();
    }
    ResponseSize {
        result_bytes,
        vo_bytes,
        framing_bytes,
    }
}
