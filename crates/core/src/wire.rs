//! Wire encoding of query responses.
//!
//! The communication-cost experiments (Figures 10 and 11) charge the
//! exact serialized size of `result + VO`. This module defines that
//! format and measures it. The encoding is self-describing enough for the
//! client to decode without the schema; all authentication happens later
//! in [`crate::verify`].

use crate::verify::{FreshnessStamp, ResponseFreshness};
use crate::vo::{QueryResponse, ResultRow, VerificationObject};
use crate::CoreError;
use bytes::{Buf, BufMut};
use vbx_crypto::accum::{Accumulator, DigestRole, SignedDigest};
use vbx_crypto::Signature;
use vbx_storage::Value;

/// Format version 2: v1 plus the trailing freshness section
/// (applied seq + optional owner stamp).
const MAGIC: &[u8; 4] = b"VBX2";

fn put_digest<const L: usize>(out: &mut Vec<u8>, d: &SignedDigest<L>) {
    out.push(d.role.to_tag());
    out.extend_from_slice(&d.exp.to_be_bytes());
    out.put_u16(d.sig.len() as u16);
    out.extend_from_slice(d.sig.as_bytes());
}

fn get_digest<const L: usize>(
    buf: &mut &[u8],
    acc: &Accumulator<L>,
) -> Result<SignedDigest<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    if buf.remaining() < 1 + L * 8 + 2 {
        return Err(corrupt("digest truncated"));
    }
    let role = DigestRole::from_tag(buf.get_u8()).ok_or_else(|| corrupt("bad role tag"))?;
    let exp_bytes = &buf[..L * 8];
    let exp = acc
        .exp_from_canonical(exp_bytes)
        .ok_or_else(|| corrupt("exponent out of range"))?;
    buf.advance(L * 8);
    let sig_len = buf.get_u16() as usize;
    if buf.remaining() < sig_len {
        return Err(corrupt("signature truncated"));
    }
    let sig = Signature(buf[..sig_len].to_vec());
    buf.advance(sig_len);
    Ok(SignedDigest { exp, role, sig })
}

/// Serialize a full response (rows + VO).
pub fn encode_response<const L: usize>(resp: &QueryResponse<L>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(MAGIC);

    // rows
    out.put_u32(resp.rows.len() as u32);
    for row in &resp.rows {
        out.put_u64(row.key);
        out.put_u16(row.values.len() as u16);
        for v in &row.values {
            v.encode_into(&mut out);
        }
    }

    // VO
    put_digest(&mut out, &resp.vo.top);
    out.put_u32(resp.vo.d_s.len() as u32);
    for d in &resp.vo.d_s {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.d_p.len() as u32);
    for d in &resp.vo.d_p {
        put_digest(&mut out, d);
    }
    out.put_u32(resp.vo.key_version);

    // freshness: applied seq, then an optional owner stamp
    out.put_u64(resp.freshness.applied_seq);
    match &resp.freshness.stamp {
        None => out.push(0),
        Some(stamp) => {
            out.push(1);
            out.put_u64(stamp.seq);
            out.put_u64(stamp.clock);
            out.put_u32(stamp.key_version);
            out.put_u16(stamp.sig.len() as u16);
            out.extend_from_slice(stamp.sig.as_bytes());
        }
    }
    out
}

/// Decode a response. `acc` supplies the group width and validates
/// exponent ranges.
pub fn decode_response<const L: usize>(
    bytes: &[u8],
    acc: &Accumulator<L>,
) -> Result<QueryResponse<L>, CoreError> {
    let corrupt = |m: &str| CoreError::Wire(m.to_string());
    let mut buf = bytes;
    if buf.remaining() < 8 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);

    let n_rows = buf.get_u32() as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        if buf.remaining() < 10 {
            return Err(corrupt("row truncated"));
        }
        let key = buf.get_u64();
        let arity = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(arity.min(1 << 16));
        for _ in 0..arity {
            values.push(Value::decode(&mut buf).map_err(CoreError::Storage)?);
        }
        rows.push(ResultRow { key, values });
    }

    let top = get_digest(&mut buf, acc)?;
    if buf.remaining() < 4 {
        return Err(corrupt("D_S header truncated"));
    }
    let n_ds = buf.get_u32() as usize;
    let mut d_s = Vec::with_capacity(n_ds.min(1 << 20));
    for _ in 0..n_ds {
        d_s.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("D_P header truncated"));
    }
    let n_dp = buf.get_u32() as usize;
    let mut d_p = Vec::with_capacity(n_dp.min(1 << 20));
    for _ in 0..n_dp {
        d_p.push(get_digest(&mut buf, acc)?);
    }
    if buf.remaining() < 4 {
        return Err(corrupt("key version truncated"));
    }
    let key_version = buf.get_u32();

    if buf.remaining() < 9 {
        return Err(corrupt("freshness truncated"));
    }
    let applied_seq = buf.get_u64();
    let stamp = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.remaining() < 22 {
                return Err(corrupt("freshness stamp truncated"));
            }
            let seq = buf.get_u64();
            let clock = buf.get_u64();
            let stamp_key_version = buf.get_u32();
            let sig_len = buf.get_u16() as usize;
            if buf.remaining() < sig_len {
                return Err(corrupt("freshness signature truncated"));
            }
            let sig = Signature(buf[..sig_len].to_vec());
            buf.advance(sig_len);
            Some(FreshnessStamp {
                seq,
                clock,
                key_version: stamp_key_version,
                sig,
            })
        }
        _ => return Err(corrupt("bad freshness stamp tag")),
    };
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(QueryResponse {
        rows,
        vo: VerificationObject {
            top,
            d_s,
            d_p,
            key_version,
        },
        freshness: ResponseFreshness { applied_seq, stamp },
    })
}

/// Byte-size breakdown of a response — the quantities plotted in
/// Figures 10 and 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseSize {
    /// Serialized result rows.
    pub result_bytes: usize,
    /// Serialized verification object.
    pub vo_bytes: usize,
    /// Framing overhead (magic, counters).
    pub framing_bytes: usize,
}

impl ResponseSize {
    /// Total bytes on the wire.
    pub fn total(&self) -> usize {
        self.result_bytes + self.vo_bytes + self.framing_bytes
    }
}

/// Measure a response without keeping the serialized buffer.
pub fn measure_response<const L: usize>(resp: &QueryResponse<L>) -> ResponseSize {
    let result_bytes: usize = resp
        .rows
        .iter()
        .map(|r| 10 + r.values.iter().map(Value::wire_len).sum::<usize>())
        .sum();
    let digest_len = |d: &SignedDigest<L>| 1 + L * 8 + 2 + d.sig.len();
    let stamp_bytes = resp
        .freshness
        .stamp
        .as_ref()
        .map_or(0, |s| 8 + 8 + 4 + 2 + s.sig.len());
    let vo_bytes = digest_len(&resp.vo.top)
        + resp.vo.d_s.iter().map(digest_len).sum::<usize>()
        + resp.vo.d_p.iter().map(digest_len).sum::<usize>()
        + 4 // key version
        + stamp_bytes;
    ResponseSize {
        result_bytes,
        vo_bytes,
        // magic + row count + D_S/D_P counters + applied seq + stamp tag
        framing_bytes: 4 + 4 + 4 + 4 + 8 + 1,
    }
}
