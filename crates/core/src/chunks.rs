//! Chunked state sync (`VBC1`) — the producer half of verified
//! bootstrap.
//!
//! The paper's trust model is that only the central DBMS signs; an edge
//! server is never trusted. That has to hold during *recovery* too: a
//! replica restoring a lost table must authenticate the state it
//! installs, and it should be able to reject a corrupted or malicious
//! source **mid-transfer**, not after buffering a full copy.
//!
//! `VBC1` therefore splits a [`VbTree`] into independently checkable
//! chunks:
//!
//! * **chunk 0 (skeleton)** — the tree header (row count, height,
//!   version, geometry, schema) plus every internal node and, for every
//!   leaf in left-to-right order, its signed node digest. Every digest
//!   in the skeleton carries the central's signature, so the restorer
//!   can authenticate the whole *shape* of the tree — and pin down the
//!   expected digest and key bounds of every leaf — before a single
//!   tuple arrives.
//! * **chunks 1..N (leaf runs)** — contiguous runs of full leaf
//!   contents (tuples + attribute/tuple digests). Each run is checked
//!   against the skeleton's pinned digests as it ingests: recomputed
//!   attribute exponents, tuple products, leaf products, separator
//!   bounds, and signatures all have to line up or the chunk is
//!   rejected on the spot.
//!
//! Every chunk carries the tree version, so a source that commits
//! between chunk requests is detected as [`SyncError::SourceChanged`]
//! instead of silently splicing two states together. The consuming side
//! is [`crate::restore::Restorer`]; schemes plug both halves into the
//! generic [`crate::scheme::AuthScheme`] sync surface
//! (`sync_chunk_count` / `encode_sync_chunk` / `begin_restore`).

use crate::node::{Node, NodeId};
use crate::tree::VbTree;
use crate::tree_codec::put_digest;
use crate::CoreError;
use bytes::BufMut;

pub(crate) const MAGIC: &[u8; 4] = b"VBC1";

/// Default number of leaves shipped per leaf chunk.
pub const DEFAULT_LEAVES_PER_CHUNK: usize = 64;

/// Failures of the chunked-sync protocol, on either side.
#[derive(Debug)]
pub enum SyncError {
    /// The scheme (named) does not support chunked sync.
    Unsupported(&'static str),
    /// A chunk index past the end of the stream was requested.
    NoSuchChunk {
        /// The requested index.
        index: u32,
        /// Chunks in the stream.
        total: u32,
    },
    /// A chunk failed to decode (truncation, bad tags, bad counts).
    Wire(CoreError),
    /// Chunks must ingest in order; a gap or replay is rejected.
    ChunkOutOfOrder {
        /// The index the restorer expected next.
        expected: u32,
        /// The index the chunk claimed.
        got: u32,
    },
    /// The source committed between chunks: the stream mixes two tree
    /// versions and cannot be authenticated as one state.
    SourceChanged {
        /// Version pinned by chunk 0.
        expected: u64,
        /// Version the offending chunk carried.
        got: u64,
    },
    /// A digest signature did not verify under the owner's key.
    BadSignature(String),
    /// Recomputed digests disagree with the signed material — the chunk
    /// was tampered with (or the source is corrupt).
    DigestMismatch(String),
    /// Structurally invalid chunk content (ordering, bounds, counts).
    Malformed(String),
    /// The stream ended before every chunk arrived.
    Incomplete {
        /// Chunks ingested so far.
        ingested: u32,
        /// Chunks the stream declared.
        expected: u32,
    },
}

impl core::fmt::Display for SyncError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SyncError::Unsupported(name) => {
                write!(f, "scheme {name} does not support chunked sync")
            }
            SyncError::NoSuchChunk { index, total } => {
                write!(f, "no chunk {index} in a {total}-chunk stream")
            }
            SyncError::Wire(e) => write!(f, "chunk decode: {e}"),
            SyncError::ChunkOutOfOrder { expected, got } => {
                write!(f, "chunk out of order: expected {expected}, got {got}")
            }
            SyncError::SourceChanged { expected, got } => write!(
                f,
                "source changed mid-stream: pinned tree version {expected}, chunk carries {got}"
            ),
            SyncError::BadSignature(m) => write!(f, "bad signature: {m}"),
            SyncError::DigestMismatch(m) => write!(f, "digest mismatch: {m}"),
            SyncError::Malformed(m) => write!(f, "malformed chunk: {m}"),
            SyncError::Incomplete { ingested, expected } => {
                write!(f, "restore incomplete: {ingested}/{expected} chunks")
            }
        }
    }
}

impl std::error::Error for SyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SyncError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SyncError {
    fn from(e: CoreError) -> Self {
        SyncError::Wire(e)
    }
}

/// Streaming, verifying consumer of a chunked sync stream (the
/// restoring side of [`crate::scheme::AuthScheme::begin_restore`]).
/// Implementations authenticate every chunk against the scheme's signed
/// commitment *as it ingests*, so tampering surfaces mid-stream.
pub trait StoreRestorer<Store>: Send {
    /// Feed the next chunk. Chunks must arrive in index order.
    fn ingest(&mut self, chunk: &[u8]) -> Result<(), SyncError>;
    /// All chunks ingested: produce the verified store.
    fn finish(self: Box<Self>) -> Result<Store, SyncError>;
}

/// Chunk producer over a [`VbTree`] (the trusted/source side).
pub struct TreeChunks<'a, const L: usize> {
    tree: &'a VbTree<L>,
    /// Leaf node ids in left-to-right key order.
    leaves: Vec<NodeId>,
    per_chunk: usize,
}

impl<'a, const L: usize> TreeChunks<'a, L> {
    /// Chunk `tree` with [`DEFAULT_LEAVES_PER_CHUNK`] leaves per leaf
    /// chunk.
    pub fn new(tree: &'a VbTree<L>) -> Self {
        Self::with_leaves_per_chunk(tree, DEFAULT_LEAVES_PER_CHUNK)
    }

    /// Chunk `tree` with an explicit leaf-run size (clamped to ≥ 1).
    pub fn with_leaves_per_chunk(tree: &'a VbTree<L>, per_chunk: usize) -> Self {
        let mut leaves = Vec::new();
        collect_leaves(tree, tree.root_id(), &mut leaves);
        Self {
            tree,
            leaves,
            per_chunk: per_chunk.max(1),
        }
    }

    /// Total chunks in the stream (skeleton + leaf runs); always ≥ 2,
    /// since even an empty tree has a root leaf.
    pub fn num_chunks(&self) -> usize {
        1 + self.leaves.len().div_ceil(self.per_chunk)
    }

    /// Encode chunk `index` of the stream.
    pub fn encode_chunk(&self, index: usize) -> Result<Vec<u8>, SyncError> {
        let total = self.num_chunks();
        if index >= total {
            return Err(SyncError::NoSuchChunk {
                index: index as u32,
                total: total as u32,
            });
        }
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        out.put_u32(index as u32);
        out.put_u32(total as u32);
        out.put_u64(self.tree.version());
        if index == 0 {
            self.encode_skeleton_chunk(&mut out);
        } else {
            self.encode_leaf_chunk(index, &mut out);
        }
        Ok(out)
    }

    fn encode_skeleton_chunk(&self, out: &mut Vec<u8>) {
        out.put_u64(self.tree.len());
        out.put_u32(self.tree.height());
        out.put_u32(self.tree.key_version());
        let g = self.tree.config().geometry;
        out.put_u32(g.block_size as u32);
        out.put_u32(g.key_len as u32);
        out.put_u32(g.ptr_len as u32);
        out.put_u32(g.digest_len as u32);
        match self.tree.config().fanout_override {
            Some(f) => {
                out.push(1);
                out.put_u32(f as u32);
            }
            None => out.push(0),
        }
        self.tree.schema().encode_into(out);
        out.put_u32(self.per_chunk as u32);
        self.encode_skeleton_node(self.tree.root_id(), out);
    }

    fn encode_skeleton_node(&self, id: NodeId, out: &mut Vec<u8>) {
        match self.tree.node(id) {
            Node::Leaf(n) => {
                out.push(0);
                put_digest(out, &n.digest);
            }
            Node::Internal(n) => {
                out.push(1);
                put_digest(out, &n.digest);
                out.put_u32(n.children.len() as u32);
                for &k in &n.keys {
                    out.put_u64(k);
                }
                for &c in &n.children {
                    self.encode_skeleton_node(c, out);
                }
            }
        }
    }

    fn encode_leaf_chunk(&self, index: usize, out: &mut Vec<u8>) {
        let start = (index - 1) * self.per_chunk;
        let end = (start + self.per_chunk).min(self.leaves.len());
        out.put_u32(start as u32);
        out.put_u32((end - start) as u32);
        for &id in &self.leaves[start..end] {
            let Node::Leaf(n) = self.tree.node(id) else {
                unreachable!("collect_leaves only records leaves");
            };
            out.put_u32(n.entries.len() as u32);
            for e in &n.entries {
                e.tuple.encode_into(out);
                for d in &e.attr_digests {
                    put_digest(out, d);
                }
                put_digest(out, &e.tuple_digest);
            }
        }
    }
}

fn collect_leaves<const L: usize>(tree: &VbTree<L>, id: NodeId, out: &mut Vec<NodeId>) {
    match tree.node(id) {
        Node::Leaf(_) => out.push(id),
        Node::Internal(n) => {
            for &c in &n.children {
                collect_leaves(tree, c, out);
            }
        }
    }
}
