//! Operation counters for the cost model.
//!
//! Section 4 prices queries and updates in units of primitive operations:
//! `Cost_h1` (deriving an attribute digest), `Cost_h2` (combining two
//! digests), `Cost_s` (decrypting/verifying a signature), and signing.
//! [`CostMeter`] counts exactly those events in the real implementation so
//! the measured series in `vbx-bench` can be compared against the
//! analytical formulas (Figures 12–13, equations (10)–(12)).

use core::fmt;

/// Counters for the paper's primitive operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Attribute-digest derivations (`Cost_h1`: one-way hash of
    /// db‖table‖attr‖key‖value).
    pub hash_ops: u64,
    /// Digest combinations (`Cost_h2`: one exponent multiplication).
    pub combine_ops: u64,
    /// Signature creations (central server only).
    pub sign_ops: u64,
    /// Signature verifications (`Cost_s` — the paper's dominant client
    /// cost).
    pub verify_ops: u64,
    /// Lifts `g^E mod p` (evaluations of the paper's `h(x)` at the top of
    /// the enveloping subtree).
    pub lift_ops: u64,
}

impl CostMeter {
    /// Fresh zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Sum of another meter into this one.
    pub fn absorb(&mut self, other: &CostMeter) {
        self.hash_ops += other.hash_ops;
        self.combine_ops += other.combine_ops;
        self.sign_ops += other.sign_ops;
        self.verify_ops += other.verify_ops;
        self.lift_ops += other.lift_ops;
    }

    /// Total cost in units of `Cost_h1`, with `combine_ratio` =
    /// `Cost_h2 / Cost_h1` and `x` = `Cost_s / Cost_h1` (the paper's `X`
    /// sweep in Figure 12; signing is priced at `sign_ratio`, typically
    /// `100·x` per the paper's citation of [15]).
    pub fn weighted(&self, combine_ratio: f64, x: f64, sign_ratio: f64) -> f64 {
        self.hash_ops as f64
            + self.combine_ops as f64 * combine_ratio
            + self.verify_ops as f64 * x
            + self.lift_ops as f64 * combine_ratio
            + self.sign_ops as f64 * sign_ratio
    }
}

impl fmt::Display for CostMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hash={} combine={} sign={} verify={} lift={}",
            self.hash_ops, self.combine_ops, self.sign_ops, self.verify_ops, self.lift_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums() {
        let mut a = CostMeter {
            hash_ops: 1,
            combine_ops: 2,
            sign_ops: 3,
            verify_ops: 4,
            lift_ops: 5,
        };
        a.absorb(&a.clone());
        assert_eq!(a.hash_ops, 2);
        assert_eq!(a.lift_ops, 10);
        a.reset();
        assert_eq!(a, CostMeter::default());
    }

    #[test]
    fn weighted_cost() {
        let m = CostMeter {
            hash_ops: 10,
            combine_ops: 4,
            sign_ops: 0,
            verify_ops: 2,
            lift_ops: 1,
        };
        // 10 + 4*0.5 + 2*10 + 1*0.5 = 32.5
        assert!((m.weighted(0.5, 10.0, 0.0) - 32.5).abs() < 1e-9);
    }
}
