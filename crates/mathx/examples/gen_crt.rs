//! Generator for the deterministic CRT fixture primes in
//! `groups::rsa_fixtures` (`crt_primes_512/1024/2048`). Re-running
//! reproduces the committed constants from the fixed seeds.
use rand::SeedableRng;
use vbx_mathx::{modular, prime, Uint};

fn gen<const L: usize>(name: &str, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let half_bits = L * 32;
    loop {
        let p: Uint<L> = prime::random_prime(half_bits, &mut rng);
        let q: Uint<L> = prime::random_prime(half_bits, &mut rng);
        if p == q {
            continue;
        }
        let n = match p.checked_mul(&q) {
            Some(n) if n.bits() == L * 64 => n,
            _ => continue,
        };
        let one = Uint::<L>::ONE;
        let p1 = p.wrapping_sub(&one);
        let q1 = q.wrapping_sub(&one);
        let g = modular::gcd(&p1, &q1);
        let (lam, _) = p1.checked_mul(&q1).unwrap().div_rem(&g);
        let e = Uint::from_u64(65_537);
        if modular::inv_mod(&e, &lam).is_none() {
            continue;
        }
        println!("{name} p = {}", p.to_hex());
        println!("{name} q = {}", q.to_hex());
        println!("{name} n = {}", n.to_hex());
        return;
    }
}

fn main() {
    gen::<8>("crt512", 0x5eed_0512);
    gen::<16>("crt1024", 0x5eed_1024);
    gen::<32>("crt2048", 0x5eed_2048);
}
