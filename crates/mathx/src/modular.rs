//! Generic modular helpers: add/sub/mul/inverse modulo arbitrary moduli.
//!
//! The Montgomery path ([`crate::MontCtx`]) covers the hot loops; these
//! helpers handle the colder, occasionally-even-modulus cases (e.g. RSA's
//! `d = e^{-1} mod λ(n)` where `λ` is even).

use crate::slice_ops;
use crate::uint::Uint;

/// `(a + b) mod m`. Requires `a, b < m`.
pub fn add_mod<const L: usize>(a: &Uint<L>, b: &Uint<L>, m: &Uint<L>) -> Uint<L> {
    debug_assert!(a < m && b < m);
    let (sum, carry) = a.overflowing_add(b);
    if carry || &sum >= m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// `(a - b) mod m`. Requires `a, b < m`.
pub fn sub_mod<const L: usize>(a: &Uint<L>, b: &Uint<L>, m: &Uint<L>) -> Uint<L> {
    debug_assert!(a < m && b < m);
    let (diff, borrow) = a.overflowing_sub(b);
    if borrow {
        diff.wrapping_add(m)
    } else {
        diff
    }
}

/// `(a * b) mod m` via a wide product and long division (works for any
/// modulus, including even ones).
pub fn mul_mod<const L: usize>(a: &Uint<L>, b: &Uint<L>, m: &Uint<L>) -> Uint<L> {
    assert!(!m.is_zero());
    let mut wide = vec![0u64; 2 * L];
    slice_ops::mul(&mut wide, a.limbs(), b.limbs());
    slice_ops::div_rem(&mut wide, m.limbs(), None);
    let mut out = [0u64; L];
    out.copy_from_slice(&wide[..L]);
    Uint::from_limbs(out)
}

/// Greatest common divisor by the binary (Stein) algorithm.
pub fn gcd<const L: usize>(a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
    let mut a = *a;
    let mut b = *b;
    if a.is_zero() {
        return b;
    }
    if b.is_zero() {
        return a;
    }
    let mut shift = 0usize;
    while a.is_even() && b.is_even() {
        a = a.shr(1);
        b = b.shr(1);
        shift += 1;
    }
    while a.is_even() {
        a = a.shr(1);
    }
    loop {
        while b.is_even() {
            b = b.shr(1);
        }
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b = b.wrapping_sub(&a);
        if b.is_zero() {
            break;
        }
    }
    a.shl(shift)
}

/// Modular inverse `a^{-1} mod m` via the iterative extended Euclidean
/// algorithm with coefficients tracked in `Z_m`. Returns `None` when
/// `gcd(a, m) != 1`.
pub fn inv_mod<const L: usize>(a: &Uint<L>, m: &Uint<L>) -> Option<Uint<L>> {
    if m.is_zero() || m.is_one() || a.is_zero() {
        return None;
    }
    let mut r0 = *m;
    let mut r1 = a.rem(m);
    if r1.is_zero() {
        return None;
    }
    let mut t0 = Uint::<L>::ZERO;
    let mut t1 = Uint::<L>::ONE;
    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1);
        // t2 = (t0 - q*t1) mod m
        let qt1 = mul_mod(&q, &t1, m);
        let t2 = sub_mod(&t0, &qt1, m);
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }
    if r0.is_one() {
        Some(t0)
    } else {
        None
    }
}

/// `base^exp mod m` for arbitrary (possibly even) modulus. Slow path —
/// use [`crate::MontCtx::pow_mod`] for odd moduli in hot code.
pub fn pow_mod<const L: usize>(base: &Uint<L>, exp: &Uint<L>, m: &Uint<L>) -> Uint<L> {
    assert!(!m.is_zero());
    if m.is_one() {
        return Uint::ZERO;
    }
    let mut acc = Uint::<L>::ONE;
    let mut b = base.rem(m);
    let nbits = exp.bits();
    for i in 0..nbits {
        if exp.bit(i) {
            acc = mul_mod(&acc, &b, m);
        }
        if i + 1 < nbits {
            b = mul_mod(&b, &b, m);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::{U128, U256};

    #[test]
    fn add_sub_mod() {
        let m = U128::from_u64(97);
        let a = U128::from_u64(90);
        let b = U128::from_u64(20);
        assert_eq!(add_mod(&a, &b, &m), U128::from_u64(13));
        assert_eq!(sub_mod(&b, &a, &m), U128::from_u64(27));
    }

    #[test]
    fn mul_mod_even_modulus() {
        let m = U128::from_u64(100);
        let a = U128::from_u64(77);
        let b = U128::from_u64(88);
        assert_eq!(mul_mod(&a, &b, &m), U128::from_u64(77 * 88 % 100));
    }

    #[test]
    fn gcd_small() {
        assert_eq!(
            gcd(&U128::from_u64(48), &U128::from_u64(36)),
            U128::from_u64(12)
        );
        assert_eq!(
            gcd(&U128::from_u64(17), &U128::from_u64(13)),
            U128::from_u64(1)
        );
        assert_eq!(gcd(&U128::ZERO, &U128::from_u64(5)), U128::from_u64(5));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = U256::from_u64(1_000_000_007);
        for a in [2u64, 3, 65_537, 999_999_999] {
            let a = U256::from_u64(a);
            let inv = inv_mod(&a, &m).expect("coprime");
            assert_eq!(mul_mod(&a, &inv, &m), U256::ONE);
        }
    }

    #[test]
    fn inverse_even_modulus() {
        // 65537^{-1} mod a highly composite even modulus
        let m = U256::from_u64(720_720);
        let e = U256::from_u64(65_537);
        let inv = inv_mod(&e, &m).expect("gcd(65537, 720720) = 1");
        assert_eq!(mul_mod(&e, &inv, &m), U256::ONE);
    }

    #[test]
    fn inverse_not_coprime() {
        let m = U128::from_u64(100);
        assert!(inv_mod(&U128::from_u64(10), &m).is_none());
    }

    #[test]
    fn pow_mod_even_modulus() {
        let m = U128::from_u64(1000);
        assert_eq!(
            pow_mod(&U128::from_u64(7), &U128::from_u64(13), &m),
            U128::from_u64(7u64.pow(13) % 1000)
        );
    }
}
