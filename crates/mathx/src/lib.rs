//! # vbx-mathx — multiprecision and modular arithmetic
//!
//! Fixed-width big-unsigned integers and the modular arithmetic needed by
//! the VB-tree's digest algebra and signature scheme:
//!
//! * [`Uint`] — const-generic little-endian limb arrays (`U256`, `U512`,
//!   `U1024`, `U2048`, ... aliases) with full arithmetic,
//! * [`MontCtx`] — Montgomery contexts for fast modular exponentiation:
//!   4-bit sliding-window repeated squaring with interleaved reductions
//!   and a dedicated squaring kernel (the optimisation Section 3.2 of the
//!   paper describes for `h(x) = g^x mod p`),
//! * [`FixedBaseTable`] — precomputed radix-16 comb tables for fixed-base
//!   exponentiation (the accumulator's generator `g` never changes, so
//!   its lifts need no squarings at all),
//! * [`prime`] — Miller–Rabin primality testing and (safe-)prime
//!   generation for RSA keygen and accumulator group setup,
//! * [`groups`] — the RFC 3526 MODP groups plus deterministic small test
//!   groups.
//!
//! Everything is implemented from scratch; no external bigint crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fixed_base;
mod mont;
mod slice_ops;
mod uint;

pub mod groups;
pub mod modular;
pub mod prime;

pub use fixed_base::FixedBaseTable;
pub use mont::MontCtx;
pub use uint::{Uint, U1024, U128, U2048, U256, U3072, U4096, U512};
