//! # vbx-mathx — multiprecision and modular arithmetic
//!
//! Fixed-width big-unsigned integers and the modular arithmetic needed by
//! the VB-tree's digest algebra and signature scheme:
//!
//! * [`Uint`] — const-generic little-endian limb arrays (`U256`, `U512`,
//!   `U1024`, `U2048`, ... aliases) with full arithmetic,
//! * [`MontCtx`] — Montgomery contexts for fast modular exponentiation by
//!   repeated squaring with interleaved reductions (the exact optimisation
//!   Section 3.2 of the paper describes for `h(x) = g^x mod p`),
//! * [`prime`] — Miller–Rabin primality testing and (safe-)prime
//!   generation for RSA keygen and accumulator group setup,
//! * [`groups`] — the RFC 3526 MODP groups plus deterministic small test
//!   groups.
//!
//! Everything is implemented from scratch; no external bigint crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mont;
mod slice_ops;
mod uint;

pub mod groups;
pub mod modular;
pub mod prime;

pub use mont::MontCtx;
pub use uint::{Uint, U1024, U128, U2048, U256, U3072, U4096, U512};
