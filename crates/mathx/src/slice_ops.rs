//! Low-level arithmetic on little-endian `u64` limb slices.
//!
//! These are the shared kernels behind [`crate::Uint`] and the Montgomery
//! machinery. They operate on plain slices so that double-width
//! intermediates (products, Montgomery buffers) can reuse the same code
//! without const-generic width arithmetic.

/// Add with carry: returns `(sum, carry_out)`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow_out)` with borrow in {0,1}.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, (t >> 127) as u64)
}

/// `acc += b`, returning the final carry. `b` may be shorter than `acc`.
pub fn add_assign(acc: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(acc.len() >= b.len());
    let mut carry = 0u64;
    for (i, limb) in acc.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        if rhs == 0 && carry == 0 && i >= b.len() {
            break;
        }
        let (s, c) = adc(*limb, rhs, carry);
        *limb = s;
        carry = c;
    }
    carry
}

/// `acc -= b`, returning the final borrow. `b` may be shorter than `acc`.
pub fn sub_assign(acc: &mut [u64], b: &[u64]) -> u64 {
    debug_assert!(acc.len() >= b.len());
    let mut borrow = 0u64;
    for (i, limb) in acc.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        if rhs == 0 && borrow == 0 && i >= b.len() {
            break;
        }
        let (d, br) = sbb(*limb, rhs, borrow);
        *limb = d;
        borrow = br;
    }
    borrow
}

/// Lexicographic comparison of two equal-length limb slices.
pub fn cmp(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// Compare slices of possibly different lengths (treating missing high
/// limbs as zero).
pub fn cmp_varlen(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    let n = a.len().max(b.len());
    for i in (0..n).rev() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        match x.cmp(&y) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// True iff every limb is zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Number of significant bits (index of highest set bit + 1; 0 for zero).
pub fn bits(a: &[u64]) -> usize {
    for i in (0..a.len()).rev() {
        if a[i] != 0 {
            return i * 64 + (64 - a[i].leading_zeros() as usize);
        }
    }
    0
}

/// Read bit `i` (little-endian bit order).
#[inline]
pub fn bit(a: &[u64], i: usize) -> bool {
    let limb = i / 64;
    if limb >= a.len() {
        return false;
    }
    (a[limb] >> (i % 64)) & 1 == 1
}

/// Shift left by one bit in place; returns the bit shifted out of the top.
pub fn shl1(a: &mut [u64]) -> u64 {
    let mut carry = 0u64;
    for limb in a.iter_mut() {
        let next = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = next;
    }
    carry
}

/// Shift right by one bit in place; returns the bit shifted out of the
/// bottom.
#[allow(dead_code)]
pub fn shr1(a: &mut [u64]) -> u64 {
    let mut carry = 0u64;
    for limb in a.iter_mut().rev() {
        let next = *limb & 1;
        *limb = (*limb >> 1) | (carry << 63);
        carry = next;
    }
    carry
}

/// Schoolbook multiplication: `out = a * b`. `out` must have length
/// `a.len() + b.len()` and is fully overwritten.
pub fn mul(out: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
}

/// Schoolbook squaring: `out = a * a`, exploiting the symmetry of the
/// product matrix — the `a_i·a_j` (`i < j`) cross products are computed
/// once and doubled, roughly halving the limb multiplications relative
/// to [`mul`]`(out, a, a)`. `out` must have length `2 * a.len()` and is
/// fully overwritten.
pub fn sqr(out: &mut [u64], a: &[u64]) {
    debug_assert_eq!(out.len(), 2 * a.len());
    out.fill(0);
    // Off-diagonal cross products a_i · a_j for i < j.
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &aj) in a.iter().enumerate().skip(i + 1) {
            let t = ai as u128 * aj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + a.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    // Double the cross products (they appear twice in the square), then
    // add the diagonal a_i² terms. The shift cannot overflow: the
    // cross-product sum is at most (a² - Σa_i²)/2 < 2^(128·len - 1).
    shl1(out);
    let mut carry = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let sq = ai as u128 * ai as u128;
        let (s0, c0) = adc(out[2 * i], sq as u64, carry);
        out[2 * i] = s0;
        let (s1, c1) = adc(out[2 * i + 1], (sq >> 64) as u64, c0);
        out[2 * i + 1] = s1;
        carry = c1;
    }
    debug_assert_eq!(carry, 0, "a^2 fits in 2·len limbs");
}

/// Binary long division: computes `num mod den` in place (into `num`) and,
/// if `quot` is provided, the quotient (must be at least `num.len()`
/// limbs). `den` must be non-zero.
pub fn div_rem(num: &mut [u64], den: &[u64], mut quot: Option<&mut [u64]>) {
    debug_assert!(!is_zero(den), "division by zero");
    if let Some(q) = quot.as_deref_mut() {
        q.fill(0);
    }
    let nbits = bits(num);
    let dbits = bits(den);
    if nbits < dbits {
        return; // remainder is num itself, quotient zero
    }
    // rem accumulates the running remainder, at most den.len()+1 limbs to
    // absorb the pre-comparison shift.
    let mut rem = vec![0u64; den.len() + 1];
    for i in (0..nbits).rev() {
        shl1(&mut rem);
        if bit(num, i) {
            rem[0] |= 1;
        }
        if cmp_varlen(&rem, den) != core::cmp::Ordering::Less {
            sub_assign(&mut rem, den);
            if let Some(q) = quot.as_deref_mut() {
                q[i / 64] |= 1 << (i % 64);
            }
            // clear the corresponding bit of num; we rebuild num as the
            // remainder at the end instead, so nothing to do here.
        }
    }
    num.fill(0);
    let n = num.len().min(rem.len());
    num[..n].copy_from_slice(&rem[..n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_sbb_roundtrip() {
        let (s, c) = adc(u64::MAX, 1, 0);
        assert_eq!((s, c), (0, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut a = [5u64, 7, 9];
        let b = [1u64, 2, 3];
        assert_eq!(add_assign(&mut a, &b), 0);
        assert_eq!(a, [6, 9, 12]);
        assert_eq!(sub_assign(&mut a, &b), 0);
        assert_eq!(a, [5, 7, 9]);
    }

    #[test]
    fn mul_small() {
        let a = [0xFFFF_FFFF_FFFF_FFFFu64];
        let b = [0xFFFF_FFFF_FFFF_FFFFu64];
        let mut out = [0u64; 2];
        mul(&mut out, &a, &b);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(out, [1, 0xFFFF_FFFF_FFFF_FFFE]);
    }

    #[test]
    fn sqr_matches_mul() {
        let cases: [&[u64]; 5] = [
            &[0],
            &[0xFFFF_FFFF_FFFF_FFFF],
            &[1, 2, 3, 4],
            &[u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            &[0x0123_4567_89AB_CDEF, 0, 0xFEDC_BA98_7654_3210],
        ];
        for a in cases {
            let mut via_mul = vec![0u64; 2 * a.len()];
            mul(&mut via_mul, a, a);
            let mut via_sqr = vec![0u64; 2 * a.len()];
            sqr(&mut via_sqr, a);
            assert_eq!(via_sqr, via_mul, "input {a:?}");
        }
    }

    #[test]
    fn div_rem_basic() {
        let mut num = [100u64, 0];
        let den = [7u64, 0];
        let mut q = [0u64; 2];
        div_rem(&mut num, &den, Some(&mut q));
        assert_eq!(num, [2, 0]);
        assert_eq!(q, [14, 0]);
    }

    #[test]
    fn div_rem_big() {
        // num = 2^127, den = 3 -> q = (2^127 - 2)/3 ... check via reconstruction
        let mut num = [0u64, 1 << 63];
        let den = [3u64, 0];
        let orig = num;
        let mut q = [0u64; 2];
        div_rem(&mut num, &den, Some(&mut q));
        // reconstruct q*3 + r == orig
        let mut prod = [0u64; 4];
        mul(&mut prod, &q, &den);
        add_assign(&mut prod, &num);
        assert_eq!(&prod[..2], &orig[..]);
        assert!(is_zero(&prod[2..]));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(bits(&[0, 0]), 0);
        assert_eq!(bits(&[1, 0]), 1);
        assert_eq!(bits(&[0, 1]), 65);
        assert!(bit(&[0, 1], 64));
        assert!(!bit(&[0, 1], 63));
    }

    #[test]
    fn shifts() {
        let mut a = [1u64 << 63, 0];
        assert_eq!(shl1(&mut a), 0);
        assert_eq!(a, [0, 1]);
        assert_eq!(shr1(&mut a), 0);
        assert_eq!(a, [1 << 63, 0]);
    }
}
