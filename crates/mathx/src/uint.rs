//! The fixed-width unsigned integer type.

use crate::slice_ops;
use core::cmp::Ordering;
use core::fmt;
use rand::Rng;

/// Fixed-width unsigned integer with `L` little-endian 64-bit limbs.
///
/// Widths used across the workspace are exposed as the aliases
/// [`U128`], [`U256`], [`U512`], [`U1024`], [`U2048`], [`U3072`],
/// [`U4096`]. Arithmetic that can overflow comes in `wrapping_*` /
/// `overflowing_*` flavours.
///
/// ```
/// use vbx_mathx::U256;
/// let a = U256::from_u64(1_000_000_007);
/// let b = U256::from_u64(998_244_353);
/// let (q, r) = a.checked_mul(&b).unwrap().div_rem(&b);
/// assert_eq!(q, a);
/// assert!(r.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const L: usize>(pub(crate) [u64; L]);

/// 128-bit unsigned integer (2 limbs).
pub type U128 = Uint<2>;
/// 256-bit unsigned integer (4 limbs).
pub type U256 = Uint<4>;
/// 512-bit unsigned integer (8 limbs).
pub type U512 = Uint<8>;
/// 1024-bit unsigned integer (16 limbs).
pub type U1024 = Uint<16>;
/// 2048-bit unsigned integer (32 limbs).
pub type U2048 = Uint<32>;
/// 3072-bit unsigned integer (48 limbs).
pub type U3072 = Uint<48>;
/// 4096-bit unsigned integer (64 limbs).
pub type U4096 = Uint<64>;

impl<const L: usize> Uint<L> {
    /// Number of limbs.
    pub const LIMBS: usize = L;
    /// Width in bits.
    pub const BITS: usize = L * 64;
    /// The value 0.
    pub const ZERO: Self = Self([0; L]);
    /// The value 1.
    pub const ONE: Self = {
        let mut limbs = [0; L];
        limbs[0] = 1;
        Self(limbs)
    };
    /// The maximum representable value (all bits set).
    pub const MAX: Self = Self([u64::MAX; L]);

    /// Construct from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0; L];
        limbs[0] = v;
        Self(limbs)
    }

    /// Construct from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        assert!(L >= 2);
        let mut limbs = [0; L];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        Self(limbs)
    }

    /// Construct from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        Self(limbs)
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64; L] {
        &self.0
    }

    /// Lowest limb as `u64` (truncating).
    pub fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        slice_ops::is_zero(&self.0)
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.0[0] == 1 && self.0[1..].iter().all(|&l| l == 0)
    }

    /// True iff the lowest bit is zero.
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        slice_ops::bits(&self.0)
    }

    /// Read bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        slice_ops::bit(&self.0, i)
    }

    /// Set bit `i` to 1.
    pub fn set_bit(&mut self, i: usize) {
        assert!(i < Self::BITS);
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Wrapping addition with carry-out flag.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = *self;
        let carry = slice_ops::add_assign(&mut out.0, &rhs.0);
        (out, carry != 0)
    }

    /// Wrapping subtraction with borrow-out flag.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = *self;
        let borrow = slice_ops::sub_assign(&mut out.0, &rhs.0);
        (out, borrow != 0)
    }

    /// Addition that panics on overflow.
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction that returns `None` on underflow.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping (mod 2^BITS) addition.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping (mod 2^BITS) subtraction.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Widening multiplication: returns `(low, high)` halves of the
    /// `2·BITS`-bit product.
    pub fn mul_wide(&self, rhs: &Self) -> (Self, Self) {
        let mut out = vec![0u64; 2 * L];
        slice_ops::mul(&mut out, &self.0, &rhs.0);
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        lo.copy_from_slice(&out[..L]);
        hi.copy_from_slice(&out[L..]);
        (Self(lo), Self(hi))
    }

    /// Truncating multiplication (panics if the product overflows, in
    /// debug builds).
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        self.mul_wide(rhs).0
    }

    /// Multiplication returning `None` on overflow.
    pub fn checked_mul(&self, rhs: &Self) -> Option<Self> {
        let (lo, hi) = self.mul_wide(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Shift left by `n` bits (panics if `n >= BITS`).
    #[allow(clippy::needless_range_loop)]
    pub fn shl(&self, n: usize) -> Self {
        assert!(n < Self::BITS);
        let mut out = [0u64; L];
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        for i in (0..L).rev() {
            if i < limb_shift {
                break;
            }
            let src = i - limb_shift;
            let mut v = self.0[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= self.0[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        Self(out)
    }

    /// Shift right by `n` bits (panics if `n >= BITS`).
    #[allow(clippy::needless_range_loop)]
    pub fn shr(&self, n: usize) -> Self {
        assert!(n < Self::BITS);
        let mut out = [0u64; L];
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        for i in 0..L {
            let src = i + limb_shift;
            if src >= L {
                break;
            }
            let mut v = self.0[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < L {
                v |= self.0[src + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        Self(out)
    }

    /// Quotient and remainder. Panics if `den` is zero.
    pub fn div_rem(&self, den: &Self) -> (Self, Self) {
        assert!(!den.is_zero(), "division by zero");
        let mut num = self.0;
        let mut quot = [0u64; L];
        slice_ops::div_rem(&mut num, &den.0, Some(&mut quot));
        (Self(quot), Self(num))
    }

    /// Remainder only.
    pub fn rem(&self, den: &Self) -> Self {
        let mut num = self.0;
        slice_ops::div_rem(&mut num, &den.0, None);
        Self(num)
    }

    /// Big-endian byte encoding (fixed width, `L * 8` bytes).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(L * 8);
        for limb in self.0.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Parse from big-endian bytes. Bytes beyond the width are rejected
    /// unless they are leading zeros.
    pub fn from_be_bytes(bytes: &[u8]) -> Option<Self> {
        let mut trimmed = bytes;
        while let Some((&0, rest)) = trimmed.split_first() {
            trimmed = rest;
        }
        if trimmed.len() > L * 8 {
            return None;
        }
        let mut limbs = [0u64; L];
        for (i, &b) in trimmed.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        Some(Self(limbs))
    }

    /// Parse from a hex string (whitespace tolerated, no `0x` prefix
    /// required). Returns `None` if invalid or too wide.
    pub fn from_hex(s: &str) -> Option<Self> {
        let cleaned: String = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .collect();
        let cleaned = cleaned.strip_prefix("0x").unwrap_or(&cleaned);
        if cleaned.is_empty() || !cleaned.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        if cleaned.len() > L * 16 {
            // allow leading zeros
            let nonzero = cleaned.trim_start_matches('0');
            if nonzero.len() > L * 16 {
                return None;
            }
        }
        let mut limbs = [0u64; L];
        for (i, c) in cleaned.chars().rev().enumerate() {
            let nibble = c.to_digit(16).unwrap() as u64;
            let limb = i / 16;
            if limb >= L {
                if nibble != 0 {
                    return None;
                }
                continue;
            }
            limbs[limb] |= nibble << (4 * (i % 16));
        }
        Some(Self(limbs))
    }

    /// Lower-case hex rendering without leading zeros (at least one digit).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        let mut started = false;
        for limb in self.0.iter().rev() {
            if started {
                s.push_str(&format!("{limb:016x}"));
            } else if *limb != 0 {
                s.push_str(&format!("{limb:x}"));
                started = true;
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// Uniformly random value with exactly `bits` significant bits
    /// (top bit forced to 1).
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0 && bits <= Self::BITS);
        let mut limbs = [0u64; L];
        let full = bits / 64;
        for limb in limbs.iter_mut().take(full) {
            *limb = rng.gen();
        }
        let rem = bits % 64;
        if rem > 0 {
            limbs[full] = rng.gen::<u64>() >> (64 - rem);
        }
        let mut v = Self(limbs);
        v.set_bit(bits - 1);
        v
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero());
        let nbits = bound.bits();
        loop {
            let mut limbs = [0u64; L];
            let full = nbits / 64;
            for limb in limbs.iter_mut().take(full) {
                *limb = rng.gen();
            }
            let rem = nbits % 64;
            if rem > 0 {
                limbs[full] = rng.gen::<u64>() >> (64 - rem);
            }
            let v = Self(limbs);
            if v < *bound {
                return v;
            }
        }
    }

    /// Widen (or narrow, if the value fits) to another limb count.
    /// Returns `None` when narrowing would truncate non-zero limbs.
    pub fn resize<const M: usize>(&self) -> Option<Uint<M>> {
        let mut limbs = [0u64; M];
        for (i, &l) in self.0.iter().enumerate() {
            if i < M {
                limbs[i] = l;
            } else if l != 0 {
                return None;
            }
        }
        Some(Uint(limbs))
    }
}

impl<const L: usize> Default for Uint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> PartialOrd for Uint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> Ord for Uint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        slice_ops::cmp(&self.0, &other.0)
    }
}

impl<const L: usize> fmt::Debug for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{}>(0x{})", L, self.to_hex())
    }
}

impl<const L: usize> fmt::Display for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl<const L: usize> From<u64> for Uint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!(U256::ZERO.is_zero());
        assert!(U256::ONE.is_one());
        assert_eq!(U256::BITS, 256);
    }

    #[test]
    fn add_sub() {
        let a = U256::from_u64(10);
        let b = U256::from_u64(3);
        assert_eq!(a.wrapping_sub(&b), U256::from_u64(7));
        assert_eq!(a.wrapping_add(&b), U256::from_u64(13));
        assert_eq!(U256::MAX.overflowing_add(&U256::ONE), (U256::ZERO, true));
        assert_eq!(U256::ZERO.overflowing_sub(&U256::ONE), (U256::MAX, true));
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = U256::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF);
        let b = U256::from_u64(0xFFFF_FFFF);
        let p = a.checked_mul(&b).unwrap();
        let (q, r) = p.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn hex_roundtrip() {
        let a = U256::from_hex("deadbeef0123456789abcdef").unwrap();
        assert_eq!(a.to_hex(), "deadbeef0123456789abcdef");
        let b = U256::from_hex(&a.to_hex()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hex_with_whitespace() {
        let a = U128::from_hex("FFFF FFFF  0000_0001").unwrap();
        assert_eq!(a, U128::from_u128(0xFFFF_FFFF_0000_0001));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = U256::from_u128(0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        let bytes = a.to_be_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(U256::from_be_bytes(&bytes).unwrap(), a);
        // short input with implicit leading zeros
        assert_eq!(U256::from_be_bytes(&[1, 0]).unwrap(), U256::from_u64(256));
    }

    #[test]
    fn shifts() {
        let a = U256::from_u64(1);
        assert_eq!(a.shl(200).shr(200), a);
        assert_eq!(a.shl(64), U256::from_limbs([0, 1, 0, 0]));
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_limbs([0, 0, 0, 1]);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn resize_widen_narrow() {
        let a = U128::from_u128(u128::MAX);
        let w: U256 = a.resize().unwrap();
        assert_eq!(w.bits(), 128);
        let back: U128 = w.resize().unwrap();
        assert_eq!(back, a);
        let too_big: Option<U128> = U256::MAX.resize();
        assert!(too_big.is_none());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = rand::thread_rng();
        let bound = U256::from_u64(1000);
        for _ in 0..100 {
            let v = U256::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_top_bit() {
        let mut rng = rand::thread_rng();
        for bits in [1usize, 63, 64, 65, 255, 256] {
            let v = U256::random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits);
        }
    }
}
