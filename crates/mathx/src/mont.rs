//! Montgomery-form modular arithmetic.
//!
//! [`MontCtx`] precomputes everything needed for fast repeated modular
//! multiplication and exponentiation modulo an odd modulus. Exponentiation
//! is square-and-multiply with a reduction after every step — the
//! "repeated squaring coupled with modulo reductions" optimisation that
//! Section 3.2 of the paper prescribes for evaluating `h(x) = g^x mod p`.

use crate::slice_ops;
use crate::uint::Uint;

/// Precomputed context for arithmetic modulo an odd modulus `n`.
#[derive(Clone, Debug)]
pub struct MontCtx<const L: usize> {
    n: Uint<L>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64·L)`; used to enter Montgomery form.
    r2: Uint<L>,
    /// `R mod n` — the Montgomery representation of 1.
    r1: Uint<L>,
}

/// Run `f` over a thread-local scratch slice of `len` limbs, reused
/// across calls — `mont_mul`/`mont_sqr`/`from_mont` execute once per
/// window digit of every exponentiation, so a heap allocation per call
/// would dominate small-width products. The buffer only grows (widths
/// share it) and its contents are never read before being overwritten.
fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    use core::cell::RefCell;
    thread_local! {
        static BUF: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }
    BUF.with(|b| {
        let mut t = b.borrow_mut();
        if t.len() < len {
            t.resize(len, 0);
        }
        f(&mut t[..len])
    })
}

/// Inverse of an odd `u64` modulo `2^64` via Newton–Hensel lifting.
fn inv64(n: u64) -> u64 {
    debug_assert!(n & 1 == 1);
    let mut x = n; // 3 correct bits to start
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x
}

impl<const L: usize> MontCtx<L> {
    /// Create a context for the odd modulus `n > 1`.
    ///
    /// # Panics
    /// Panics if `n` is even or `n <= 1`.
    pub fn new(n: Uint<L>) -> Self {
        assert!(!n.is_even(), "Montgomery modulus must be odd");
        assert!(!n.is_one() && !n.is_zero(), "modulus must exceed 1");
        let n0_inv = inv64(n.limbs()[0]).wrapping_neg();

        // r1 = 2^(64L) mod n: start from the top bit representable and
        // double with reduction 64L - (bits-1) ... simpler: long-divide.
        let mut wide = vec![0u64; 2 * L + 1];
        wide[2 * L] = 0;
        // set bit 64*L
        let mut num = vec![0u64; L + 1];
        num[L] = 1;
        slice_ops::div_rem(&mut num, n.limbs(), None);
        let mut r1 = [0u64; L];
        r1.copy_from_slice(&num[..L]);
        let r1 = Uint::from_limbs(r1);

        // r2 = r1^2 mod n via a wide product + long division.
        let mut prod = vec![0u64; 2 * L];
        slice_ops::mul(&mut prod, r1.limbs(), r1.limbs());
        slice_ops::div_rem(&mut prod, n.limbs(), None);
        let mut r2 = [0u64; L];
        r2.copy_from_slice(&prod[..L]);
        let r2 = Uint::from_limbs(r2);

        let _ = &mut wide;
        Self { n, n0_inv, r2, r1 }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint<L> {
        &self.n
    }

    /// Montgomery reduction of a `2L`-limb buffer: returns `t·R^{-1} mod n`.
    fn redc(&self, t: &mut [u64]) -> Uint<L> {
        debug_assert_eq!(t.len(), 2 * L + 1);
        let n = self.n.limbs();
        for i in 0..L {
            let m = t[i].wrapping_mul(self.n0_inv);
            let mut carry = 0u128;
            for (j, &nj) in n.iter().enumerate() {
                let x = t[i + j] as u128 + m as u128 * nj as u128 + carry;
                t[i + j] = x as u64;
                carry = x >> 64;
            }
            let mut k = i + L;
            while carry != 0 {
                let x = t[k] as u128 + carry;
                t[k] = x as u64;
                carry = x >> 64;
                k += 1;
            }
        }
        let mut out = [0u64; L];
        out.copy_from_slice(&t[L..2 * L]);
        let extra = t[2 * L];
        if extra != 0 || slice_ops::cmp(&out, n) != core::cmp::Ordering::Less {
            slice_ops::sub_assign(&mut out, n);
        }
        Uint::from_limbs(out)
    }

    /// Montgomery product into a caller-provided `2L + 1`-limb scratch
    /// buffer (avoids an allocation per multiplication in the hot
    /// exponentiation loops).
    #[inline]
    fn mul_into(&self, t: &mut [u64], a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        slice_ops::mul(&mut t[..2 * L], a.limbs(), b.limbs());
        t[2 * L] = 0;
        self.redc(t)
    }

    /// Montgomery squaring into a caller-provided scratch buffer.
    #[inline]
    fn sqr_into(&self, t: &mut [u64], a: &Uint<L>) -> Uint<L> {
        slice_ops::sqr(&mut t[..2 * L], a.limbs());
        t[2 * L] = 0;
        self.redc(t)
    }

    /// Montgomery product: `a·b·R^{-1} mod n` (inputs in Montgomery form).
    pub fn mont_mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        with_scratch(2 * L + 1, |t| self.mul_into(t, a, b))
    }

    /// Montgomery squaring: `a²·R^{-1} mod n` (input in Montgomery form).
    /// Identical result to `mont_mul(a, a)` at roughly half the limb
    /// products — the workhorse of the repeated-squaring loops.
    pub fn mont_sqr(&self, a: &Uint<L>) -> Uint<L> {
        with_scratch(2 * L + 1, |t| self.sqr_into(t, a))
    }

    /// Enter Montgomery form: `a·R mod n`.
    pub fn to_mont(&self, a: &Uint<L>) -> Uint<L> {
        self.mont_mul(a, &self.r2)
    }

    /// Leave Montgomery form: `a·R^{-1} mod n`.
    pub fn from_mont(&self, a: &Uint<L>) -> Uint<L> {
        with_scratch(2 * L + 1, |t| {
            t[..L].copy_from_slice(a.limbs());
            t[L..].fill(0);
            self.redc(t)
        })
    }

    /// The Montgomery representation of 1 (`R mod n`).
    pub fn one(&self) -> Uint<L> {
        self.r1
    }

    /// Modular multiplication of plain (non-Montgomery) values.
    pub fn mul_mod(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` of plain values.
    ///
    /// 4-bit sliding-window exponentiation over Montgomery form: odd
    /// powers `base^1, base^3, …, base^15` are precomputed, squarings use
    /// the dedicated [`mont_sqr`](Self::mont_sqr) kernel, and a reduction
    /// follows every step — the "repeated squaring coupled with modulo
    /// reductions" optimisation Section 3.2 prescribes, with ~⅓ the
    /// multiplications of plain square-and-multiply.
    pub fn pow_mod(&self, base: &Uint<L>, exp: &Uint<L>) -> Uint<L> {
        self.pow_mod_varexp(base, exp.limbs())
    }

    /// Modular exponentiation with an exponent given as little-endian
    /// limbs of arbitrary width (used when exponents are wider than the
    /// modulus type).
    pub fn pow_mod_varexp(&self, base: &Uint<L>, exp: &[u64]) -> Uint<L> {
        let nbits = slice_ops::bits(exp);
        if nbits == 0 {
            return self.from_mont(&self.r1); // base^0 = 1
        }
        let base_m = self.to_mont(&base.rem(&self.n));
        let mut t = vec![0u64; 2 * L + 1]; // shared scratch for every step
        if nbits <= 24 {
            // Short exponents — including RSA verify's e = 65537
            // (17 bits, 2 set bits): the 8-multiplication window table
            // would cost more than it saves below ~24 bits.
            let mut acc = base_m;
            for i in (0..nbits - 1).rev() {
                acc = self.sqr_into(&mut t, &acc);
                if slice_ops::bit(exp, i) {
                    acc = self.mul_into(&mut t, &acc, &base_m);
                }
            }
            return self.from_mont(&acc);
        }

        // Odd powers base^(2k+1) for k in 0..8, in Montgomery form.
        let base_sq = self.sqr_into(&mut t, &base_m);
        let mut odd = [base_m; 8];
        for k in 1..8 {
            odd[k] = self.mul_into(&mut t, &odd[k - 1], &base_sq);
        }

        let mut acc = self.r1; // 1 in Montgomery form
        let mut i = nbits as isize - 1;
        while i >= 0 {
            if !slice_ops::bit(exp, i as usize) {
                acc = self.sqr_into(&mut t, &acc);
                i -= 1;
                continue;
            }
            // Greedy window [j, i] of at most 4 bits ending on a set bit.
            let mut j = (i - 3).max(0);
            while !slice_ops::bit(exp, j as usize) {
                j += 1;
            }
            let mut val = 0usize;
            for k in (j..=i).rev() {
                val = (val << 1) | slice_ops::bit(exp, k as usize) as usize;
            }
            for _ in j..=i {
                acc = self.sqr_into(&mut t, &acc);
            }
            acc = self.mul_into(&mut t, &acc, &odd[val >> 1]);
            i = j - 1;
        }
        self.from_mont(&acc)
    }

    /// Reference modular exponentiation: plain left-to-right
    /// square-and-multiply, one Montgomery reduction per step. Kept as
    /// the baseline the windowed/fixed-base fast paths are proven
    /// bit-identical to (see the property tests), and for measuring the
    /// speedup.
    pub fn pow_mod_naive(&self, base: &Uint<L>, exp: &Uint<L>) -> Uint<L> {
        let nbits = exp.bits();
        if nbits == 0 {
            return self.from_mont(&self.r1); // base^0 = 1
        }
        let base_m = self.to_mont(&base.rem(&self.n));
        let mut acc = self.r1; // 1 in Montgomery form
        for i in (0..nbits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }

    /// Modular squaring of a plain value.
    pub fn sqr_mod(&self, a: &Uint<L>) -> Uint<L> {
        self.mul_mod(a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::{U128, U256};

    #[test]
    fn inv64_works() {
        for n in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            assert_eq!(n.wrapping_mul(inv64(n)), 1);
        }
    }

    #[test]
    fn mont_roundtrip() {
        let n = U256::from_u64(1_000_003); // odd modulus
        let ctx = MontCtx::new(n);
        let a = U256::from_u64(123_456);
        let am = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&am), a);
    }

    #[test]
    fn mul_mod_small() {
        let n = U128::from_u64(97);
        let ctx = MontCtx::new(n);
        let a = U128::from_u64(53);
        let b = U128::from_u64(80);
        assert_eq!(ctx.mul_mod(&a, &b), U128::from_u64(53 * 80 % 97));
    }

    #[test]
    fn pow_mod_fermat() {
        // 2^(p-1) = 1 mod p for prime p
        let p = U128::from_u64(1_000_000_007);
        let ctx = MontCtx::new(p);
        let r = ctx.pow_mod(&U128::from_u64(2), &U128::from_u64(1_000_000_006));
        assert_eq!(r, U128::ONE);
    }

    #[test]
    fn pow_mod_zero_exponent() {
        let p = U128::from_u64(101);
        let ctx = MontCtx::new(p);
        assert_eq!(ctx.pow_mod(&U128::from_u64(7), &U128::ZERO), U128::ONE);
    }

    #[test]
    fn pow_mod_matches_naive() {
        let p = U128::from_u64(2_147_483_659); // prime
        let ctx = MontCtx::new(p);
        let mut expected = 1u128;
        let base = 1234_5678u128;
        for e in 0..40u64 {
            let got = ctx.pow_mod(&U128::from_u64(base as u64), &U128::from_u64(e));
            assert_eq!(got, U128::from_u128(expected), "exp {e}");
            expected = expected * base % 2_147_483_659u128;
        }
    }

    #[test]
    fn pow_mod_big_modulus() {
        // (a*b) mod n computed two ways
        let n = U256::from_hex("f000000000000000000000000000000000000000000000000000000000000001")
            .unwrap();
        let ctx = MontCtx::new(n);
        let a = U256::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let sq1 = ctx.mul_mod(&a, &a);
        let sq2 = ctx.pow_mod(&a, &U256::from_u64(2));
        assert_eq!(sq1, sq2);
        // wide product check: a^2 mod n via div_rem
        let (lo, hi) = a.mul_wide(&a);
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(lo.limbs());
        wide[4..].copy_from_slice(hi.limbs());
        crate::slice_ops::div_rem(&mut wide, n.limbs(), None);
        let mut r = [0u64; 4];
        r.copy_from_slice(&wide[..4]);
        assert_eq!(sq1, U256::from_limbs(r));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_modulus() {
        let _ = MontCtx::new(U128::from_u64(100));
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let n = U256::from_hex("9f9b41d4cd3cc3db42914b1df5f84da30c82ed1e4728e754fda103b8924619f3")
            .unwrap();
        let ctx = MontCtx::new(n);
        for seed in [1u64, 42, 0xFFFF_FFFF_FFFF_FFFF] {
            let a = ctx.to_mont(&U256::from_limbs([seed, seed ^ 7, seed.rotate_left(13), 0]));
            assert_eq!(ctx.mont_sqr(&a), ctx.mont_mul(&a, &a));
        }
    }

    #[test]
    fn windowed_pow_matches_naive() {
        let n = U256::from_hex("f000000000000000000000000000000000000000000000000000000000000001")
            .unwrap();
        let ctx = MontCtx::new(n);
        let base = U256::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let exps = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(2),
            U256::from_u64(65_537),
            U256::from_u64(0xDEAD_BEEF_CAFE),
            U256::MAX,
            n, // exponent >= modulus
        ];
        for e in exps {
            assert_eq!(
                ctx.pow_mod(&base, &e),
                ctx.pow_mod_naive(&base, &e),
                "exp {e}"
            );
        }
    }
}
