//! Primality testing and prime generation.
//!
//! Miller–Rabin over Montgomery arithmetic, with a small-prime sieve
//! front-end, plus generators for random primes and safe primes
//! (`p = 2q + 1`, used by the accumulator group) and RSA-style prime
//! pairs.

use crate::mont::MontCtx;
use crate::uint::Uint;
use rand::Rng;

/// Small primes used for trial division before Miller–Rabin.
fn small_primes() -> &'static [u64] {
    // Primes below 1000 — enough to filter ~90% of random candidates.
    const P: [u64; 168] = [
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
        97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
        191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
        283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397,
        401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503,
        509, 521, 523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619,
        631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743,
        751, 757, 761, 769, 773, 787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863,
        877, 881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
    ];
    &P
}

/// Remainder of `n` modulo a small `u64` divisor.
fn rem_u64<const L: usize>(n: &Uint<L>, d: u64) -> u64 {
    let mut rem: u128 = 0;
    for &limb in n.limbs().iter().rev() {
        rem = ((rem << 64) | limb as u128) % d as u128;
    }
    rem as u64
}

/// Quick check against the small-prime list. Returns `false` when `n` is
/// divisible by a small prime (and isn't that prime itself).
fn passes_sieve<const L: usize>(n: &Uint<L>) -> bool {
    for &p in small_primes() {
        let r = rem_u64(n, p);
        if r == 0 {
            // n is divisible by p: prime only if n == p.
            return n == &Uint::from_u64(p);
        }
    }
    true
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases
/// plus the first few fixed bases. For `rounds = 32` the error probability
/// is below 2^-64 for random candidates.
pub fn is_probable_prime<const L: usize, R: Rng + ?Sized>(
    n: &Uint<L>,
    rounds: usize,
    rng: &mut R,
) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if n.is_even() {
        return n == &Uint::from_u64(2);
    }
    if !passes_sieve(n) {
        return false;
    }
    if n.bits() <= 10 {
        // covered exhaustively by the sieve above
        return true;
    }

    // Write n-1 = d * 2^s with d odd.
    let n_minus_1 = n.wrapping_sub(&Uint::ONE);
    let mut d = n_minus_1;
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    let ctx = MontCtx::new(*n);
    let two = Uint::from_u64(2);
    let n_minus_3 = n.wrapping_sub(&Uint::from_u64(3));

    let fixed: [u64; 5] = [2, 3, 5, 7, 11];
    let witness = |a: Uint<L>| -> bool {
        // returns true when `a` witnesses compositeness
        let mut x = ctx.pow_mod(&a, &d);
        if x.is_one() || x == n_minus_1 {
            return false;
        }
        for _ in 1..s {
            x = ctx.mul_mod(&x, &x);
            if x == n_minus_1 {
                return false;
            }
            if x.is_one() {
                return true;
            }
        }
        true
    };

    for &a in &fixed {
        if witness(Uint::from_u64(a)) {
            return false;
        }
    }
    for _ in 0..rounds {
        // a in [2, n-2]
        let a = Uint::random_below(rng, &n_minus_3).wrapping_add(&two);
        if witness(a) {
            return false;
        }
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
pub fn random_prime<const L: usize, R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Uint<L> {
    assert!(bits >= 8 && bits <= Uint::<L>::BITS);
    loop {
        let mut cand = Uint::<L>::random_bits(rng, bits);
        cand.0[0] |= 1; // force odd
        if is_probable_prime(&cand, 16, rng) {
            return cand;
        }
    }
}

/// Generate a random safe prime `p = 2q + 1` with `p` of exactly `bits`
/// bits. Returns `(p, q)`. This is slow for large widths; tests use the
/// precomputed groups in [`crate::groups`].
pub fn random_safe_prime<const L: usize, R: Rng + ?Sized>(
    bits: usize,
    rng: &mut R,
) -> (Uint<L>, Uint<L>) {
    assert!(bits >= 16 && bits <= Uint::<L>::BITS);
    loop {
        let mut q = Uint::<L>::random_bits(rng, bits - 1);
        q.0[0] |= 1;
        // p = 2q+1; sieve both before the expensive tests.
        let p = q.shl(1).wrapping_add(&Uint::ONE);
        if !passes_sieve(&q) || !passes_sieve(&p) {
            continue;
        }
        if is_probable_prime(&q, 8, rng) && is_probable_prime(&p, 8, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::{U128, U256};

    #[test]
    fn small_prime_classification() {
        let mut rng = rand::thread_rng();
        let primes = [2u64, 3, 5, 97, 101, 65_537, 1_000_000_007];
        let composites = [
            1u64,
            4,
            100,
            65_536,
            1_000_000_008,
            561, /* Carmichael */
        ];
        for p in primes {
            assert!(
                is_probable_prime(&U128::from_u64(p), 8, &mut rng),
                "{p} should be prime"
            );
        }
        for c in composites {
            assert!(
                !is_probable_prime(&U128::from_u64(c), 8, &mut rng),
                "{c} should be composite"
            );
        }
        assert!(!is_probable_prime(&U128::ZERO, 8, &mut rng));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = rand::thread_rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_probable_prime(&U128::from_u64(c), 8, &mut rng));
        }
    }

    #[test]
    fn random_prime_is_odd_and_sized() {
        let mut rng = rand::thread_rng();
        let p: U128 = random_prime(64, &mut rng);
        assert_eq!(p.bits(), 64);
        assert!(!p.is_even());
    }

    #[test]
    fn safe_prime_small() {
        let mut rng = rand::thread_rng();
        let (p, q): (U128, U128) = random_safe_prime(48, &mut rng);
        assert_eq!(p, q.shl(1).wrapping_add(&U128::ONE));
        assert!(is_probable_prime(&p, 8, &mut rng));
        assert!(is_probable_prime(&q, 8, &mut rng));
    }

    #[test]
    fn rem_u64_matches() {
        let n = U256::from_u128(123_456_789_012_345_678_901_234_567u128);
        assert_eq!(
            rem_u64(&n, 97),
            (123_456_789_012_345_678_901_234_567u128 % 97) as u64
        );
    }
}
