//! Fixed-base exponentiation via a precomputed radix-16 comb table.
//!
//! The accumulator's lift `h(E) = g^E mod p` always exponentiates the
//! *same* generator `g`, so the squaring chain of a general
//! exponentiation is pure waste: every power of `g` a 4-bit window could
//! ever need can be tabulated once. [`FixedBaseTable`] stores
//! `g^(d · 16^w) mod p` (in Montgomery form) for every window position
//! `w` and digit `d ∈ [1, 15]`; an exponentiation then costs at most one
//! Montgomery multiplication per non-zero nibble of the exponent — no
//! squarings at all. For a `b`-bit exponent that is ≤ `b/4`
//! multiplications versus `b` squarings plus ~`b/3` multiplications for
//! the sliding-window general path.

use crate::mont::MontCtx;
use crate::slice_ops;
use crate::uint::Uint;

/// Precomputed powers of a fixed base modulo a [`MontCtx`]'s modulus.
///
/// Covers exponents of the full `L·64`-bit width, so any `Uint<L>`
/// exponent (including values at or above the group order) produces the
/// same result as a general `pow_mod`.
#[derive(Clone, Debug)]
pub struct FixedBaseTable<const L: usize> {
    /// `windows[w][d - 1] = base^(d · 16^w)` in Montgomery form.
    windows: Vec<[Uint<L>; 15]>,
}

impl<const L: usize> FixedBaseTable<L> {
    /// Tabulate `base` over `ctx`'s modulus. Costs `15 · 16·L` Montgomery
    /// multiplications once; intended for long-lived contexts such as an
    /// accumulator's generator.
    pub fn new(ctx: &MontCtx<L>, base: &Uint<L>) -> Self {
        let n_windows = L * 16; // L·64 bits / 4 bits per window
        let mut windows = Vec::with_capacity(n_windows);
        let mut cur = ctx.to_mont(&base.rem(ctx.modulus())); // base^(16^w)
        for _ in 0..n_windows {
            let mut row = [cur; 15];
            for d in 1..15 {
                row[d] = ctx.mont_mul(&row[d - 1], &cur);
            }
            cur = ctx.mont_mul(&row[14], &cur); // advance to base^(16^(w+1))
            windows.push(row);
        }
        Self { windows }
    }

    /// `base^exp mod n`, bit-identical to `ctx.pow_mod(base, exp)`.
    pub fn pow(&self, ctx: &MontCtx<L>, exp: &Uint<L>) -> Uint<L> {
        ctx.from_mont(&self.pow_mont(ctx, exp))
    }

    /// `base^exp` in Montgomery form (for callers chaining further
    /// Montgomery arithmetic).
    pub fn pow_mont(&self, ctx: &MontCtx<L>, exp: &Uint<L>) -> Uint<L> {
        let limbs = exp.limbs();
        let nbits = slice_ops::bits(limbs);
        let mut acc: Option<Uint<L>> = None;
        for (w, row) in self.windows.iter().enumerate() {
            if w * 4 >= nbits {
                break;
            }
            let digit = (limbs[w / 16] >> ((w % 16) * 4)) & 0xF;
            if digit == 0 {
                continue;
            }
            let term = &row[digit as usize - 1];
            acc = Some(match acc {
                Some(a) => ctx.mont_mul(&a, term),
                None => *term,
            });
        }
        acc.unwrap_or_else(|| ctx.one()) // exp == 0 → base^0 = 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uint::U256;

    fn ctx() -> MontCtx<4> {
        let n = U256::from_hex("9f9b41d4cd3cc3db42914b1df5f84da30c82ed1e4728e754fda103b8924619f3")
            .unwrap();
        MontCtx::new(n)
    }

    #[test]
    fn matches_general_pow() {
        let ctx = ctx();
        let g = U256::from_u64(4);
        let table = FixedBaseTable::new(&ctx, &g);
        let exps = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(2),
            U256::from_u64(0xF0F0_F0F0),
            U256::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF),
            U256::MAX,
        ];
        for e in exps {
            assert_eq!(table.pow(&ctx, &e), ctx.pow_mod_naive(&g, &e), "exp {e}");
        }
    }

    #[test]
    fn base_above_modulus_is_reduced() {
        let ctx = ctx();
        let big = U256::MAX; // > modulus; table must reduce it first
        let table = FixedBaseTable::new(&ctx, &big);
        let e = U256::from_u64(12345);
        assert_eq!(table.pow(&ctx, &e), ctx.pow_mod_naive(&big, &e));
    }

    #[test]
    fn mont_form_roundtrip() {
        let ctx = ctx();
        let g = U256::from_u64(4);
        let table = FixedBaseTable::new(&ctx, &g);
        let e = U256::from_u64(987_654_321);
        let m = table.pow_mont(&ctx, &e);
        assert_eq!(ctx.from_mont(&m), table.pow(&ctx, &e));
    }
}
