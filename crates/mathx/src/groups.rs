//! Precomputed safe-prime groups for the commutative digest accumulator.
//!
//! The paper's digest-combining function is `h(x) = g^x mod p`. We work in
//! the order-`q` subgroup of `Z_p*` for a safe prime `p = 2q + 1`, so that
//! exponents form the field `Z_q` and exponent products are well-defined.
//!
//! Two families are provided:
//!
//! * deterministic **test groups** (128/256/512-bit), generated offline
//!   with a seeded search and verified by the test suite — fast enough for
//!   debug-mode tests, *not* for production security;
//! * the **RFC 3526 MODP groups** (1536/2048-bit), the standard
//!   well-known safe primes, for realistically-sized measurements.
//!
//! In all groups the generator of the order-`q` subgroup is `g = 4`
//! (`2^2`, a quadratic residue for every safe prime; for the RFC groups
//! `g = 2` itself already generates the subgroup since `p ≡ 7 (mod 8)`,
//! but `4` works uniformly so we use it everywhere).

use crate::uint::{Uint, U1024, U128, U2048, U256, U512};

/// A safe-prime group `(p = 2q + 1, q, g)` at a given limb width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafePrimeGroup<const L: usize> {
    /// The safe prime modulus `p`.
    pub p: Uint<L>,
    /// The Sophie Germain prime `q = (p - 1) / 2`, the subgroup order.
    pub q: Uint<L>,
    /// Generator of the order-`q` subgroup.
    pub g: Uint<L>,
}

impl<const L: usize> SafePrimeGroup<L> {
    fn from_hex(p: &str, q: &str) -> Self {
        let p = Uint::from_hex(p).expect("valid p constant");
        let q = Uint::from_hex(q).expect("valid q constant");
        debug_assert_eq!(q.shl(1).wrapping_add(&Uint::ONE), p, "p = 2q + 1");
        Self {
            p,
            q,
            g: Uint::from_u64(4),
        }
    }
}

/// Deterministic 128-bit test group (seeded search, not for production).
pub fn test_group_128() -> SafePrimeGroup<{ U128::LIMBS }> {
    SafePrimeGroup::from_hex(
        "eb93f78cc415e2b0ba5b209ef18b20e7",
        "75c9fbc6620af1585d2d904f78c59073",
    )
}

/// Deterministic 256-bit test group (seeded search, not for production).
pub fn test_group_256() -> SafePrimeGroup<{ U256::LIMBS }> {
    SafePrimeGroup::from_hex(
        "9f9b41d4cd3cc3db42914b1df5f84da30c82ed1e4728e754fda103b8924619f3",
        "4fcda0ea669e61eda148a58efafc26d18641768f239473aa7ed081dc49230cf9",
    )
}

/// Deterministic 512-bit test group (seeded search, not for production).
pub fn test_group_512() -> SafePrimeGroup<{ U512::LIMBS }> {
    SafePrimeGroup::from_hex(
        "fb8def3a572e8dc20670083d0a2a21dd4499d394148beb09ecd2f93a018018d0\
         af9a57a96a9172dc5baba339cccd0f6fccb7fdc53fb67c330afe160326d4cd17",
        "7dc6f79d2b9746e10338041e851510eea24ce9ca0a45f584f6697c9d00c00c68\
         57cd2bd4b548b96e2dd5d19ce66687b7e65bfee29fdb3e19857f0b01936a668b",
    )
}

const RFC3526_1536_P: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
    020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
    4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
    EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
    98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
    9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF";

const RFC3526_2048_P: &str = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
    020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
    4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
    EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
    98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
    9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
    E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
    3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// The RFC 3526 1536-bit MODP group (group id 5), returned at 1536-bit
/// width (24 limbs).
pub fn rfc3526_group_1536() -> SafePrimeGroup<24> {
    let p: Uint<24> = Uint::from_hex(RFC3526_1536_P).expect("constant");
    let q = p.shr(1); // (p-1)/2: p is odd so shr(1) == (p-1)/2
    SafePrimeGroup {
        p,
        q,
        g: Uint::from_u64(4),
    }
}

/// The RFC 3526 2048-bit MODP group (group id 14).
pub fn rfc3526_group_2048() -> SafePrimeGroup<{ U2048::LIMBS }> {
    let p: U2048 = Uint::from_hex(RFC3526_2048_P).expect("constant");
    let q = p.shr(1);
    SafePrimeGroup {
        p,
        q,
        g: Uint::from_u64(4),
    }
}

/// Deterministic RSA test moduli (seeded generation, e = 65537). These are
/// *fixtures* for fast tests; real deployments must generate fresh keys.
pub mod rsa_fixtures {
    use super::*;

    /// Public exponent shared by all fixtures.
    pub const E: u64 = 65_537;

    /// 512-bit test modulus.
    pub fn n_512() -> U512 {
        Uint::from_hex(
            "bbe8b0f07364dc27c4f2a74926288c596f449a323de12537ba547554a9d55529\
             e06d2a0c3d6044d31f33aef282c4a05dd980e829c893e3b2b48419ecf7d63e4d",
        )
        .unwrap()
    }

    /// Private exponent matching [`n_512`].
    pub fn d_512() -> U512 {
        Uint::from_hex(
            "4f8848dfb4cfa338f7ec866e79069f84b90a0dc3a71a34b0f61e0a3d27d6e200\
             a8ffd8a906e304dd973023d99489014ffdef2ae5955ac631dcc2f8f40a3bdf97",
        )
        .unwrap()
    }

    /// Prime factors of a *second* deterministic 512-bit modulus, for
    /// keys built via CRT (`RsaKeyPair::from_primes`). Not the factors
    /// of [`n_512`] — those were never recorded. Generated by
    /// `examples/gen_crt.rs` (seeded search, e = 65537 invertible).
    pub fn crt_primes_512() -> (U512, U512) {
        (
            Uint::from_hex("ff16a69c17f2a79a17fae8a6d755fad8c4d4f548217a2dbe9750ea19151ff3e7")
                .unwrap(),
            Uint::from_hex("9d7fafa73e76f39fd59fed36aabb26d2c62d849be61df7c7047663d8ce8f6ac7")
                .unwrap(),
        )
    }

    /// Prime factors of a deterministic 1024-bit CRT fixture modulus
    /// (see [`crt_primes_512`]).
    pub fn crt_primes_1024() -> (U1024, U1024) {
        (
            Uint::from_hex(
                "ef81b133e71c2f97d9ef048fb52f1c2dfd652ee1f021812404738a3e195c1bdb\
                 0afece0861145dc7f9bdbe39932d77f9274e6b6fd9ba668481a54e5815ebff7f",
            )
            .unwrap(),
            Uint::from_hex(
                "a52fddf7c048a57fe1c1408c86b468946c0e6a98f9f59febcead78c7401185d2\
                 3767d59d7107003dbeb3f273f3e4398d9392abe8834e7748a8db3ca7f6d1585b",
            )
            .unwrap(),
        )
    }

    /// Prime factors of a deterministic 2048-bit CRT fixture modulus
    /// (see [`crt_primes_512`]).
    pub fn crt_primes_2048() -> (U2048, U2048) {
        (
            Uint::from_hex(
                "e3bae6164ad0c75e2d5ea849882e719eede009387568ae940cc266a67e4b7953\
                 cc3da6e4b6adc48ca4023728eab1859e25156b555e0ebd1a5a28687211e3b68a\
                 d01f0eca4826e491bebcfe6e72d5bd72c69d474ffda0685c8a333ad6e614013e\
                 5305de9f5ffe22254f6f9b0eae331da6f1656811ca6d3d720fbf96da53f608f9",
            )
            .unwrap(),
            Uint::from_hex(
                "b50077ac45d5c43e0db704edc62b35282dfe2c8e91266c9c7dfee63c906d1ce6\
                 21e0b054404282099b8e380f9b38adcbde4711c50b75ccb0879daa8a11de6082\
                 8533c467b9f9b56e0c6ee80d717b4f6a2f246acff5f9159c906c2d1c9283f645\
                 5ac661d302d3901c18088d7c4c5cf5894ddfa09d279b272aa9e37327590a40e3",
            )
            .unwrap(),
        )
    }

    /// 1024-bit test modulus.
    pub fn n_1024() -> U1024 {
        Uint::from_hex(
            "9835748a38c6bbb3ebb4cb223641a58d454a8b70857d2da80085f0983aa00dbb\
             bb7c4ec7b64a8c167d3252dae9b5574325099b8b5e6a469ba063c424134a72f3\
             986de47d5b41e79ccde671eb459d54aa7c071191e632b6e3352e1ff15c78971d\
             85ec8580564118235de64017226ad7e6b3809043c1661c29ecf283ad74363fd5",
        )
        .unwrap()
    }

    /// Private exponent matching [`n_1024`].
    pub fn d_1024() -> U1024 {
        Uint::from_hex(
            "b26514ae5c5530f273b476d1265e52b6fd1b9dcac7ea2b74d908233188a4c6f3\
             dd8e98972264c5442680b0f3bb2fbb930af9f3c0a96c4e4d60f30d946ab7bb79\
             4fd89d8a465361ccb61b890706a15f422cfabdc5f11c7aebb5e502f5753dfd03\
             4b889365c95d9811c9750c1571873b423616620f08047ea1d9cc44344db25c9",
        )
        .unwrap()
    }

    /// 2048-bit test modulus.
    pub fn n_2048() -> U2048 {
        Uint::from_hex(
            "82fd3dbb0ad8bfa3a61c66be1e2a4e1abb9e0dc0da24bfede63ebcdefdbedee1\
             dbef3da9c9b91c15f13e8e075abc2aaa66b4e971130ba10798c72b17144cdc56\
             47379859697eca184edee1d156435ec35318c7187bef07bd79e81cb21f142071\
             681387f81f59f5394ca034d1ed42a72149703412e82a5a6a0dfac3e248ac0146\
             e82f3b686016d3bc6acd44fab1183d05c7a42c7b46907470e230c5a43b7892f7\
             be39463c5f6bb02c63bb9b5b31f691ee757b94bfd2ea14ea11c3b2799c9c52bc\
             272a993d9fbc2beececfe5277f6a41f6e82df1f3cdfd73b1fd2b237dca3616d7\
             bc090c9c1cf49d8d32302e162f4e5d4a5720734b5dc9ffbbe2db2b68a3e66ebb",
        )
        .unwrap()
    }

    /// Private exponent matching [`n_2048`].
    pub fn d_2048() -> U2048 {
        Uint::from_hex(
            "12dfdc05ed99847e5785d4257a41ecf5dbd44f205b79317c082740c928eb0341\
             56e846e1b0ed79673801ced959c659fcd51bd05f63627e40e7fa1af2bd116e2b\
             b320b1aa8091ad1bdf91821c75ea489200914619a3120848271ebe5e742d4eec\
             c86b0d614008930094a7fe5f1969a1f22146325ab46ac0931e3c8f53e080d86b\
             612564c607019b7d5474e66ceacf39fa94f536ff54dca15cde0f9991d772530d\
             90f1839c0426139f34ff5deb73937655abc48da40a7368c692b7a35f9c952725\
             9ea31747330d46ae38f8e114ee6d3e5429b899cf4962f169217f0213700c389e\
             28cfa5d6021303af657c3086937c8bb7aaf6963f000332e9a13baf4c0b7a6d31",
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular;
    use crate::mont::MontCtx;
    use crate::prime::is_probable_prime;

    fn check_group<const L: usize>(grp: SafePrimeGroup<L>, bits: usize) {
        assert_eq!(grp.p.bits(), bits);
        assert_eq!(grp.q.shl(1).wrapping_add(&Uint::ONE), grp.p);
        // g = 4 must have order q: g^q == 1 mod p and g != 1.
        let ctx = MontCtx::new(grp.p);
        assert_eq!(ctx.pow_mod(&grp.g, &grp.q), Uint::ONE);
        assert!(!grp.g.is_one());
    }

    #[test]
    fn test_groups_well_formed() {
        check_group(test_group_128(), 128);
        check_group(test_group_256(), 256);
        check_group(test_group_512(), 512);
    }

    #[test]
    fn test_groups_prime() {
        let mut rng = rand::thread_rng();
        let g = test_group_128();
        assert!(is_probable_prime(&g.p, 8, &mut rng));
        assert!(is_probable_prime(&g.q, 8, &mut rng));
        let g = test_group_256();
        assert!(is_probable_prime(&g.p, 4, &mut rng));
        assert!(is_probable_prime(&g.q, 4, &mut rng));
    }

    #[test]
    fn rfc3526_shapes() {
        let g5 = rfc3526_group_1536();
        assert_eq!(g5.p.bits(), 1536);
        // RFC 3526 primes are ≡ 7 (mod 8)
        assert_eq!(g5.p.limbs()[0] & 7, 7);
        let g14 = rfc3526_group_2048();
        assert_eq!(g14.p.bits(), 2048);
        assert_eq!(g14.p.limbs()[0] & 7, 7);
    }

    /// Full primality verification of the RFC constants — expensive, run
    /// with `cargo test -- --ignored` in release mode.
    #[test]
    #[ignore = "expensive: Miller-Rabin on 1536/2048-bit constants"]
    fn rfc3526_prime() {
        let mut rng = rand::thread_rng();
        let g5 = rfc3526_group_1536();
        assert!(is_probable_prime(&g5.p, 2, &mut rng));
        assert!(is_probable_prime(&g5.q, 2, &mut rng));
    }

    #[test]
    fn rsa_fixture_roundtrip_512() {
        use rsa_fixtures::*;
        let n = n_512();
        let ctx = MontCtx::new(n);
        let m = Uint::from_u64(0x123456789abcdef);
        let c = ctx.pow_mod(&m, &d_512());
        let back = ctx.pow_mod(&c, &Uint::from_u64(E));
        assert_eq!(back, m);
    }

    #[test]
    fn rsa_fixture_roundtrip_1024() {
        use rsa_fixtures::*;
        let n = n_1024();
        let ctx = MontCtx::new(n);
        let m = Uint::from_u64(0xdeadbeef);
        let c = ctx.pow_mod(&m, &d_1024());
        assert_eq!(ctx.pow_mod(&c, &Uint::from_u64(E)), m);
    }

    #[test]
    fn generator_in_subgroup_produces_distinct_powers() {
        let grp = test_group_128();
        let ctx = MontCtx::new(grp.p);
        let a = ctx.pow_mod(&grp.g, &Uint::from_u64(12345));
        let b = ctx.pow_mod(&grp.g, &Uint::from_u64(54321));
        assert_ne!(a, b);
        // commutativity: (g^a)^b == (g^b)^a
        let ab = ctx.pow_mod(&a, &Uint::from_u64(54321));
        let ba = ctx.pow_mod(&b, &Uint::from_u64(12345));
        assert_eq!(ab, ba);
    }

    #[test]
    fn modular_inverse_exists_in_zq() {
        let grp = test_group_128();
        let x = Uint::from_u64(987_654_321);
        let inv = modular::inv_mod(&x, &grp.q).unwrap();
        assert_eq!(modular::mul_mod(&x, &inv, &grp.q), Uint::ONE);
    }
}
