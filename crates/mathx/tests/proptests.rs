//! Property tests for the multiprecision substrate: arithmetic laws
//! against native-integer references, division reconstruction, and
//! modular identities.

use proptest::prelude::*;
use vbx_mathx::{modular, FixedBaseTable, MontCtx, U128, U256};

fn u256(v: u128) -> U256 {
    U256::from_u128(v)
}

/// Full-width value from two u128 halves.
fn wide(lo: u128, hi: u128) -> U256 {
    U256::from_limbs([lo as u64, (lo >> 64) as u64, hi as u64, (hi >> 64) as u64])
}

/// A random odd 256-bit modulus > 1.
fn odd_modulus(lo: u128, hi: u128) -> U256 {
    let m = wide(lo | 1, hi);
    if m.is_one() {
        U256::from_u64(3)
    } else {
        m
    }
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = u256(a as u128).wrapping_add(&u256(b as u128));
        prop_assert_eq!(sum, u256(a as u128 + b as u128));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let diff = u256(hi).wrapping_sub(&u256(lo));
        prop_assert_eq!(diff, u256(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = u256(a as u128).checked_mul(&u256(b as u128)).unwrap();
        prop_assert_eq!(prod, u256(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_reconstructs(n in any::<u128>(), d in 1u128..) {
        let (q, r) = u256(n).div_rem(&u256(d));
        prop_assert_eq!(q, u256(n / d));
        prop_assert_eq!(r, u256(n % d));
        // reconstruction in the wide domain
        let back = q.checked_mul(&u256(d)).unwrap().checked_add(&r).unwrap();
        prop_assert_eq!(back, u256(n));
    }

    #[test]
    fn hex_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let v = U256::from_limbs([a as u64, (a >> 64) as u64, b as u64, (b >> 64) as u64]);
        prop_assert_eq!(U256::from_hex(&v.to_hex()).unwrap(), v);
    }

    #[test]
    fn be_bytes_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let v = U256::from_limbs([a as u64, (a >> 64) as u64, b as u64, (b >> 64) as u64]);
        prop_assert_eq!(U256::from_be_bytes(&v.to_be_bytes()).unwrap(), v);
    }

    #[test]
    fn shifts_invert(v in any::<u64>(), n in 0usize..190) {
        let x = u256(v as u128);
        prop_assert_eq!(x.shl(n).shr(n), x);
    }

    #[test]
    fn mont_mul_matches_generic(a in any::<u64>(), b in any::<u64>(), m in any::<u64>()) {
        let m = (m | 1).max(3); // odd modulus > 1
        let ctx = MontCtx::new(U128::from_u64(m));
        let x = U128::from_u64(a % m);
        let y = U128::from_u64(b % m);
        let fast = ctx.mul_mod(&x, &y);
        let slow = modular::mul_mod(&x, &y, &U128::from_u64(m));
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fast, U128::from_u128((a % m) as u128 * (b % m) as u128 % m as u128));
    }

    #[test]
    fn pow_laws_mod_prime(a in 2u64..1_000_000, x in 0u64..200, y in 0u64..200) {
        // a^(x+y) == a^x · a^y (mod p) for prime p.
        const P: u64 = 1_000_000_007;
        let p = U128::from_u64(P);
        let ctx = MontCtx::new(p);
        let base = U128::from_u64(a);
        let lhs = ctx.pow_mod(&base, &U128::from_u64(x + y));
        let rhs = ctx.mul_mod(
            &ctx.pow_mod(&base, &U128::from_u64(x)),
            &ctx.pow_mod(&base, &U128::from_u64(y)),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_mod_even_modulus_matches_naive(a in 1u64..1000, e in 0u32..12, m in 2u64..10_000) {
        let got = modular::pow_mod(
            &U128::from_u64(a),
            &U128::from_u64(e as u64),
            &U128::from_u64(m),
        );
        let mut expect = 1u128;
        for _ in 0..e {
            expect = expect * a as u128 % m as u128;
        }
        prop_assert_eq!(got, U128::from_u128(expect));
    }

    #[test]
    fn gcd_divides_both(a in 1u64.., b in 1u64..) {
        let g = modular::gcd(&U128::from_u64(a), &U128::from_u64(b));
        let gv = g.low_u64();
        prop_assert!(gv > 0);
        prop_assert_eq!(a % gv, 0);
        prop_assert_eq!(b % gv, 0);
        // matches Euclid on native ints
        fn native_gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        prop_assert_eq!(gv, native_gcd(a, b));
    }

    #[test]
    fn inverse_multiplies_to_one(a in 1u64.., m in 3u64..) {
        let am = U256::from_u64(a % m);
        let mm = U256::from_u64(m);
        if let Some(inv) = modular::inv_mod(&am, &mm) {
            prop_assert_eq!(modular::mul_mod(&am, &inv, &mm), U256::ONE);
        } else {
            // gcd must be > 1 when no inverse exists
            let g = modular::gcd(&am, &mm);
            prop_assert!(!g.is_one());
        }
    }

    #[test]
    fn resize_widen_is_lossless(a in any::<u128>()) {
        let v = U128::from_u128(a);
        let wide: U256 = v.resize().unwrap();
        let back: U128 = wide.resize().unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(u256(a).cmp(&u256(b)), a.cmp(&b));
    }

    /// The 4-bit sliding-window `pow_mod` is bit-identical to plain
    /// square-and-multiply over random full-width operands and moduli.
    #[test]
    fn windowed_pow_matches_naive_random(
        b in any::<(u128, u128)>(),
        e in any::<(u128, u128)>(),
        m in any::<(u128, u128)>(),
    ) {
        let modulus = odd_modulus(m.0, m.1);
        let ctx = MontCtx::new(modulus);
        let base = wide(b.0, b.1);
        let exp = wide(e.0, e.1);
        prop_assert_eq!(ctx.pow_mod(&base, &exp), ctx.pow_mod_naive(&base, &exp));
    }

    /// Windowed vs naive at the edge cases the fast path special-cases:
    /// zero exponent, tiny exponents (short-exponent path), exponent
    /// equal to / above the modulus, and max-width operands.
    #[test]
    fn windowed_pow_matches_naive_edges(
        b in any::<(u128, u128)>(),
        m in any::<(u128, u128)>(),
    ) {
        let modulus = odd_modulus(m.0, m.1);
        let ctx = MontCtx::new(modulus);
        let base = wide(b.0, b.1);
        let edges = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(2),
            U256::from_u64(65_537),
            modulus, // exponent >= group order
            modulus.wrapping_add(&U256::ONE),
            U256::MAX,
        ];
        for e in edges {
            prop_assert_eq!(ctx.pow_mod(&base, &e), ctx.pow_mod_naive(&base, &e));
        }
    }

    /// `mont_sqr` is bit-identical to `mont_mul(a, a)` for any operand.
    #[test]
    fn mont_sqr_matches_mont_mul(a in any::<(u128, u128)>(), m in any::<(u128, u128)>()) {
        let ctx = MontCtx::new(odd_modulus(m.0, m.1));
        let am = ctx.to_mont(&wide(a.0, a.1));
        prop_assert_eq!(ctx.mont_sqr(&am), ctx.mont_mul(&am, &am));
    }

    /// Fixed-base comb lifts are bit-identical to the naive path for any
    /// base and exponent (including exponents above the modulus).
    #[test]
    fn fixed_base_matches_naive(
        b in any::<(u128, u128)>(),
        e in any::<(u128, u128)>(),
        m in any::<(u128, u128)>(),
    ) {
        let ctx = MontCtx::new(odd_modulus(m.0, m.1));
        let base = wide(b.0, b.1);
        let table = FixedBaseTable::new(&ctx, &base);
        let exp = wide(e.0, e.1);
        prop_assert_eq!(table.pow(&ctx, &exp), ctx.pow_mod_naive(&base, &exp));
        prop_assert_eq!(table.pow(&ctx, &U256::ZERO), ctx.pow_mod_naive(&base, &U256::ZERO));
        prop_assert_eq!(table.pow(&ctx, &U256::MAX), ctx.pow_mod_naive(&base, &U256::MAX));
    }
}
