//! Offline stand-in for the `bytes` crate: the `Buf`/`BufMut` subset the
//! workspace's codecs use, implemented over `&[u8]` and `Vec<u8>`.
//!
//! Byte order matches the real crate: the plain `get_*`/`put_*` methods
//! are big-endian.

#![forbid(unsafe_code)]

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;
    /// A slice view of the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()` (as the real crate does).
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy remaining bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16(300);
        out.put_u32(70_000);
        out.put_u64(1 << 40);
        out.put_i64(-5);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16(), 300);
        assert_eq!(buf.get_u32(), 70_000);
        assert_eq!(buf.get_u64(), 1 << 40);
        assert_eq!(buf.get_i64(), -5);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1];
        buf.get_u16();
    }
}
