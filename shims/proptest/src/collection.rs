//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        Self {
            lo,
            hi_excl: hi + 1,
        }
    }
}

/// `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi_excl - self.size.lo);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::from_seed(7);
        let s = vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u64..10, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
