//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/macro surface this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, [`arbitrary::any`],
//! integer-range / tuple / regex-string strategies, `collection::vec`,
//! `option::of`, `bool::ANY`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   and the generated inputs are not minimised.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   module path and name, so failures reproduce across runs. Set
//!   `PROPTEST_SEED=<u64>` to perturb the whole suite.
//! * Regex string strategies support the subset `.`, `[class]`,
//!   literals, and `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                // The closure gives `return Err(TestCaseError::...)` and
                // the implicit trailing `Ok(())` somewhere to land, as in
                // the real crate.
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("{e}"),
                }
            }
        }
    )*};
}

/// `assert!` under proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when an assumption fails (the case counts as
/// rejected, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly (or by weight, with `weight => strategy` arms) among
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
