//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `Some` from `inner` about three quarters of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(8);
        let s = of(0u64..10);
        let (mut some, mut none) = (false, false);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Some(_) => some = true,
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
