//! Test configuration and the deterministic RNG behind value generation.

/// A rejected or failed test case, as in the real crate's `test_runner`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by a failed assumption).
    Reject(String),
    /// The case failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejection with a reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Per-test configuration. Only `cases` is interpreted by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG (splitmix64 stream) used for all value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seed deterministically from a test's fully-qualified name, mixed
    /// with `PROPTEST_SEED` if set in the environment.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u128() % bound as u128) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64(); // different name, different stream (overwhelmingly)
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
