//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fair coin.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

/// The canonical boolean strategy.
pub const ANY: AnyBool = AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_of_coin() {
        let mut rng = TestRng::from_seed(9);
        let (mut t, mut f) = (false, false);
        for _ in 0..64 {
            if ANY.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
