//! The [`Strategy`] trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

/// Maximum retries for `prop_filter` before the case is abandoned.
const FILTER_RETRIES: usize = 1000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `f`, retrying (no shrinking).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `f` wraps
    /// an inner strategy into the next level, applied `depth` times. The
    /// `_desired_size` / `_expected_branch_size` tuning knobs of the real
    /// crate are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {FILTER_RETRIES} consecutive values",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u128() as u64 % self.total_weight;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// --- integer range strategies ---

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u128() % span) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128 spans overflow i128 arithmetic; implement directly.
impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u128::MAX {
            return rng.next_u128();
        }
        lo + rng.next_u128() % (hi - lo + 1)
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        (self.start..=u128::MAX).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // unit_f64 is [0, 1); stretch marginally so `hi` is reachable.
        let v = lo + rng.unit_f64() * (hi - lo);
        v.min(hi)
    }
}

// --- tuple strategies ---

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u128..).generate(&mut rng);
            assert!(w >= 1);
            let x = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn map_filter_flat_map() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u64..100)
            .prop_map(|v| v * 2)
            .prop_filter("even only", |v| v % 2 == 0)
            .prop_flat_map(|v| v..v + 1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 200);
        }
    }

    #[test]
    fn union_uniform_hits_all_arms() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_bottoms_out() {
        enum T {
            Leaf(#[allow(dead_code)] u64),
            Node(Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let s = (0u64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::from_seed(4);
        for _ in 0..20 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
