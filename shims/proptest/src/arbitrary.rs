//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of well-behaved magnitudes and raw bit patterns, so NaN and
        // infinities appear occasionally (callers filter what they need).
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            _ => (rng.next_u64() as i64 as f64) * (rng.unit_f64() - 0.5),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII, plus the occasional multibyte scalar.
        if rng.below(8) == 0 {
            char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿')
        } else {
            (0x20 + rng.below(0x5F) as u8) as char
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(33);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(33);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_u8_varies_in_length() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<Vec<u8>>();
        let lens: Vec<usize> = (0..50).map(|_| s.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| l <= 32));
        assert!(lens.iter().any(|&l| l > 0), "lengths never vary: {lens:?}");
    }

    #[test]
    fn f64_eventually_nan() {
        let mut rng = TestRng::from_seed(6);
        let s = any::<f64>();
        let mut saw_finite = false;
        for _ in 0..200 {
            if s.generate(&mut rng).is_finite() {
                saw_finite = true;
            }
        }
        assert!(saw_finite);
    }
}
