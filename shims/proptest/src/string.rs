//! Regex-subset string strategies: `"[a-z]{1,8}"` and friends.
//!
//! Implements `Strategy` for `&'static str`, interpreting the pattern as
//! a generator over the subset: literal characters, `.` (printable
//! ASCII), character classes `[a-z0-9_]` (ranges and literals, no
//! negation), and the quantifiers `{m}`, `{m,n}`, `*` (0–8), `+` (1–8),
//! and `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    AnyPrintable,
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let start = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((start, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((start, start));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().expect("bad quantifier lower bound");
                            let hi = if hi.trim().is_empty() {
                                lo + 8
                            } else {
                                hi.trim().parse().expect("bad quantifier upper bound")
                            };
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().expect("bad quantifier count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyPrintable => (0x20 + rng.below(0x5F) as u8) as char,
        Atom::Class(ranges) => {
            let total: usize = ranges
                .iter()
                .map(|&(a, b)| (b as usize).saturating_sub(a as usize) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(a, b) in ranges {
                let span = (b as usize).saturating_sub(a as usize) + 1;
                if pick < span {
                    return char::from_u32(a as u32 + pick as u32).unwrap_or(a);
                }
                pick -= span;
            }
            ranges.first().map(|&(a, _)| a).unwrap_or('a')
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_seed(10);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn leading_class_then_tail() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn dot_quantified() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn mixed_class_with_space() {
        let mut rng = TestRng::from_seed(13);
        for _ in 0..100 {
            let s = "[a-zA-Z0-9 ]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }
}
