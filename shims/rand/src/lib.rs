//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides `RngCore`/`Rng`/`SeedableRng`, a `StdRng` built on
//! splitmix64 + xoshiro-style mixing, and `thread_rng()`. Statistical
//! quality is adequate for test workloads and Miller–Rabin witnesses; it
//! is *not* a cryptographic RNG (neither is the code path that uses it —
//! key generation in this workspace is test-fixture material).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an `RngCore` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1), 53 bits of precision — same convention as rand.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range, like the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value within a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A coin flip with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard RNG: splitmix64-seeded xorshift128+.
#[derive(Clone, Debug)]
pub struct StdRng {
    s0: u64,
    s1: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s0 = splitmix64(&mut state);
        let s1 = splitmix64(&mut state);
        Self { s0, s1 }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift128+
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::{StdRng, ThreadRng};
}

/// A per-call RNG handle, seeded once per process from the system clock.
#[derive(Clone, Debug)]
pub struct ThreadRng(StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A fresh `ThreadRng`, uniquely seeded per call.
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    ThreadRng(StdRng::seed_from_u64(nanos ^ unique.rotate_left(32)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(0..100);
            assert!((0..100).contains(&v));
            let u: usize = rng.gen_range(3..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn unsized_rng_callable() {
        // Mirrors `fn f<R: Rng + ?Sized>(rng: &mut R)` call sites.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynamic: &mut dyn RngCore = &mut rng;
        let _ = draw(dynamic);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
