//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the macro/group/bencher surface this workspace's benches
//! use. Timing is a plain `Instant` mean over `sample_size` iterations —
//! good enough to eyeball relative costs, not for publication. Swap the
//! path dependency for the real crate to get statistics and reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup allocations (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, called `samples` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.samples as u64;
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut i| routine(&mut i), _size);
    }
}

fn report(id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{id:<48} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{id:<48} {:>12.1} ns/iter ({} iters)", per_iter, b.iters);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotate throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().to_string(), f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        self.run(id.into().to_string(), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5);
    }

    #[test]
    fn group_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(4).throughput(Throughput::Elements(1));
        let mut setups = 0;
        g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &_p| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
