//! Offline stand-in for `parking_lot`: non-poisoning `Mutex`/`RwLock`
//! wrappers over `std::sync`. A poisoned std lock (panicked holder) is
//! re-entered rather than propagated, matching parking_lot's semantics.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
