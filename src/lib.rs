//! # vbx — Authenticating Query Results in Edge Computing
//!
//! A from-scratch Rust reproduction of Pang & Tan's ICDE 2004 paper: the
//! **Verifiable B-tree (VB-tree)**, verification objects for
//! selection/projection/join results produced by untrusted edge servers,
//! the Naive and Merkle baselines, the full edge-computing deployment
//! (central server, edge servers, clients, locking, update propagation,
//! key rotation), and the complete Section 4 cost model.
//!
//! This crate re-exports the workspace's public API. Start with
//! [`quickstart`](#quickstart) below, the `examples/` directory, or the
//! crate-level docs of the members:
//!
//! * [`vbx_core`] — the VB-tree, VOs, client verification
//! * [`vbx_crypto`] — hashes, the commutative accumulator, RSA
//! * [`vbx_storage`] — schemas, tuples, pages, synthetic workloads
//! * [`vbx_query`] — SQL subset, predicates, materialised join views
//! * [`vbx_edge`] — central/edge/client deployment and locking
//! * [`vbx_baselines`] — the Naive strategy and a Merkle hash tree
//! * [`vbx_analysis`] — the paper's analytical cost model
//! * [`vbx_mathx`] — multiprecision and modular arithmetic
//!
//! ## Quickstart
//!
//! ```
//! use vbx::prelude::*;
//! use std::sync::Arc;
//!
//! // Trusted central server: build the database and its VB-trees.
//! let acc = Acc256::test_default();
//! let signer = Arc::new(MockSigner::with_version(1, 1));
//! let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
//! central.create_table(WorkloadSpec::new(1_000, 4, 12).build());
//!
//! // Unsecured edge server: receives the replica, answers queries.
//! let edge = EdgeServer::from_bundle(central.bundle());
//! let sql = "SELECT a0, a3 FROM items WHERE id BETWEEN 100 AND 140";
//! let (_plan, response) = edge.query_sql(sql).unwrap();
//!
//! // Client: verifies with public material only.
//! let client = EdgeClient::new(edge.schemas(), acc);
//! let rows = client
//!     .verify(sql, &response, central.registry(), KeyFreshnessPolicy::RequireCurrent)
//!     .unwrap();
//! assert_eq!(rows.rows.len(), 41);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vbx_analysis;
pub use vbx_baselines;
pub use vbx_core;
pub use vbx_crypto;
pub use vbx_edge;
pub use vbx_mathx;
pub use vbx_query;
pub use vbx_storage;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use vbx_analysis::Params;
    pub use vbx_baselines::{MerkleAuthStore, MerkleScheme, NaiveAuthStore, NaiveScheme};
    pub use vbx_core::{
        execute, AuthScheme, ClientVerifier, CostMeter, FreshnessPolicy, FreshnessStamp,
        QueryResponse, RangeQuery, ResponseFreshness, SignedDelta, TamperMode, UpdateOp, VbScheme,
        VbTree, VbTreeConfig, VerifiedBatch, VerifyError,
    };
    pub use vbx_crypto::signer::{MockSigner, SigVerifier, Signer};
    pub use vbx_crypto::{rsa, Acc256, Accumulator, KeyRegistry};
    pub use vbx_edge::{
        CentralEndpoint, CentralServer, ClusterConfig, ClusterCoordinator, EdgeClient,
        EdgeEndpoint, EdgeServer, KeyFreshnessPolicy, LockManager, LockMode, LoopbackTransport,
        NetClient, NetServer, SchemeClient, ShardMap, TcpTransport, Transport,
    };
    pub use vbx_query::{parse_select, AuthQueryEngine, ClientSession, JoinViewDef};
    pub use vbx_storage::workload::WorkloadSpec;
    pub use vbx_storage::{ColumnDef, ColumnType, Schema, Table, Tuple, Value};
}
