//! Tamper detection walkthrough: every compromise mode of an edge
//! server, what the client sees, and the one documented boundary case.
//!
//! ```text
//! cargo run --example tamper_detection
//! ```

use std::sync::Arc;
use vbx::prelude::*;

fn main() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(7, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(WorkloadSpec::new(2_000, 6, 16).build());

    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc);
    let sql = "SELECT * FROM items WHERE id BETWEEN 500 AND 700";

    let modes = [
        ("honest", TamperMode::None),
        ("mutate a value", TamperMode::MutateValue),
        ("inject a spurious row", TamperMode::InjectRow),
        ("silently drop a row", TamperMode::DropRow),
        (
            "drop + reclassify its digest (documented boundary)",
            TamperMode::DropAndReclassify { key: 600 },
        ),
    ];

    for (label, mode) in modes {
        edge.set_tamper(mode);
        let (_, resp) = edge.query_sql(sql).unwrap();
        match client.verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        ) {
            Ok(rows) => println!("{label:55} -> ACCEPTED ({} rows)", rows.rows.len()),
            Err(e) => println!("{label:55} -> REJECTED: {e}"),
        }
    }

    println!();
    println!("The last line is the paper's §3.1 trust model in action: edge");
    println!("servers are assumed hacked-not-malicious; an edge that moves a");
    println!("qualifying tuple's signed digest into D_S produces a VO that");
    println!("still balances. The Merkle baseline (vbx-baselines) closes that");
    println!("gap at the cost of exposing boundary tuples.");
}
