//! The README's generic-pipeline snippet, kept compiling: one
//! range query served and verified through the `AuthScheme`
//! interface with the Merkle baseline. Swap `MerkleScheme` for
//! `NaiveScheme::new(acc)` or `VbScheme::new(acc, config)` and
//! nothing else changes.

use std::sync::Arc;
use vbx::prelude::*;

fn main() {
    let table = WorkloadSpec::new(1_000, 4, 12).build();
    let name = table.schema().table.clone();
    let schema = table.schema().clone();
    // Pick a scheme: VbScheme, NaiveScheme, or MerkleScheme.
    let scheme = MerkleScheme;
    let mut central = CentralServer::with_scheme(scheme, Arc::new(MockSigner::with_version(7, 1)));
    central.create_table(table.clone());
    // The edge holds its own replica and stays in sync via signed deltas.
    let mut edge = EdgeServer::new(scheme);
    edge.install_table(
        name.clone(),
        schema,
        scheme.build(&table, &MockSigner::with_version(7, 1)),
    );
    // Serve and verify one range query through the generic pipeline.
    let query = RangeQuery::select_all(100, 140);
    let resp = edge.query_range(&name, &query).unwrap();
    let client = SchemeClient::new(scheme, edge.schemas());
    let (batch, costs) = client
        .verify_range(
            &name,
            &query,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(batch.rows.len(), 41);
    println!("verified at cost: {costs}");
}
