//! Quickstart: the complete central → edge → client flow in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use vbx::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Central server (trusted): build a table and its VB-tree.
    // ------------------------------------------------------------------
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(42, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());

    let table = WorkloadSpec::new(5_000, 10, 20).build(); // the paper's 200-byte tuples
    central.create_table(table);
    println!("central: built VB-tree over 5000 tuples");

    // ------------------------------------------------------------------
    // Edge server (untrusted): receives a replica, serves queries.
    // ------------------------------------------------------------------
    let edge = EdgeServer::from_bundle(central.bundle());
    let sql = "SELECT a0, a9 FROM items WHERE id BETWEEN 1000 AND 1200";
    let (plan, response) = edge.query_sql(sql).expect("query plans and executes");
    println!(
        "edge: {} rows, VO carries {} signed digests (D_S = {}, D_P = {})",
        response.rows.len(),
        response.vo.digest_count(),
        response.vo.d_s.len(),
        response.vo.d_p.len(),
    );
    println!(
        "edge: plan target = {}, range = [{}, {}]",
        plan.target, plan.range_query.lo, plan.range_query.hi
    );

    // Exact bytes on the wire — the quantity Figures 10/11 model.
    let size = vbx_core::measure_response(&response);
    println!(
        "wire: result {} B + VO {} B = {} B total",
        size.result_bytes,
        size.vo_bytes,
        size.total()
    );

    // ------------------------------------------------------------------
    // Client (trusted): verify against the public key registry.
    // ------------------------------------------------------------------
    let client = EdgeClient::new(edge.schemas(), acc);
    let verified = client
        .verify(
            sql,
            &response,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .expect("honest response verifies");
    println!(
        "client: verified {} rows with {} signature checks ({})",
        verified.rows.len(),
        verified.report.signatures_checked,
        verified.report.meter,
    );

    // ------------------------------------------------------------------
    // And the point of it all: tampering is detected.
    // ------------------------------------------------------------------
    let mut tampered = response;
    tampered.rows[0].values[0] = Value::from("forged balance");
    let err = client
        .verify(
            sql,
            &tampered,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap_err();
    println!("client: tampered response rejected — {err}");
}
