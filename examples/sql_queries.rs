//! The SQL surface: selections, projections, predicates, and an
//! authenticated equijoin through a materialised view (Section 3.3).
//!
//! ```text
//! cargo run --example sql_queries
//! ```

use std::sync::Arc;
use vbx::prelude::*;

fn main() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(5, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());

    central.create_table(
        WorkloadSpec {
            table: "orders".into(),
            ..WorkloadSpec::new(800, 4, 10)
        }
        .build(),
    );
    central.create_table(
        WorkloadSpec {
            table: "parts".into(),
            seed: 777,
            ..WorkloadSpec::new(800, 4, 10)
        }
        .build(),
    );
    // Joins are known in advance in edge computing — materialise them.
    let view = central
        .materialize_join("orders", "parts", "a3", "a3")
        .unwrap();
    println!("central: materialised join view `{view}`");

    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc);

    let queries = [
        "SELECT * FROM orders WHERE id < 25",
        "SELECT a0, a3 FROM orders WHERE id BETWEEN 100 AND 300",
        "SELECT a0 FROM orders WHERE id < 500 AND a3 >= 50",
        "SELECT * FROM orders WHERE a3 < 10 OR a3 > 90",
        "SELECT * FROM orders JOIN parts ON orders.a3 = parts.a3",
        "SELECT orders_a0, parts_a0 FROM orders JOIN parts ON orders.a3 = parts.a3",
    ];

    for sql in queries {
        let (plan, resp) = edge.query_sql(sql).unwrap();
        let size = vbx_core::measure_response(&resp);
        let verified = client
            .verify(
                sql,
                &resp,
                central.registry(),
                KeyFreshnessPolicy::RequireCurrent,
            )
            .unwrap();
        println!(
            "{:4} rows | VO {:5} B | target {:30} | {sql}",
            verified.rows.len(),
            size.vo_bytes,
            plan.target,
        );
    }

    // Parse errors are reported with positions.
    match edge.query_sql("SELECT FROM oops") {
        Err(e) => println!("\nparse error surfaces cleanly: {e}"),
        Ok(_) => unreachable!(),
    }
}
