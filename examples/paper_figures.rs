//! Print the analytical series of the paper's figures (Table 1
//! defaults). The full harness — analytical *and* measured, every figure
//! — is the `repro` binary:
//!
//! ```text
//! cargo run -p vbx-bench --bin repro --release
//! ```
//!
//! This example renders a compact subset for a quick look:
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use vbx_analysis::figures::{figure10, figure12, figure8, figure9, render_table};
use vbx_analysis::Params;

fn main() {
    let p = Params::default();
    println!("{}", render_table(&figure8(&p)));
    println!("{}", render_table(&figure9(&p)));
    println!("{}", render_table(&figure10(&p, 2)));
    println!("{}", render_table(&figure12(&p, 10.0)));
    println!("(see `cargo run -p vbx-bench --bin repro --release` for all figures + measurements)");
}
