//! An edge-computing cluster: one central server, three edge servers,
//! live updates propagated as signed deltas, and key rotation exposing a
//! lagging replica.
//!
//! ```text
//! cargo run --example edge_cluster
//! ```

use std::sync::Arc;
use vbx::prelude::*;

fn main() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(99, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(
        WorkloadSpec {
            table: "sensors".into(),
            ..WorkloadSpec::new(3_000, 5, 12)
        }
        .build(),
    );

    // Three geographically-distributed edges receive replicas.
    let mut edges: Vec<EdgeServer<VbScheme<4>>> = (0..3)
        .map(|_| EdgeServer::from_bundle(central.bundle()))
        .collect();
    let client = EdgeClient::new(edges[0].schemas(), acc.clone());
    println!("cluster: central + {} edges", edges.len());

    // ------------------------------------------------------------------
    // Live updates: the central server executes them under path locks
    // and ships signed deltas; replicas replay them without any key.
    // ------------------------------------------------------------------
    let schema = central.tree("sensors").unwrap().schema().clone();
    for k in 10_000..10_020u64 {
        let tuple = Tuple::new(
            &schema,
            k,
            vec![
                Value::from(format!("reading-{k}")),
                Value::from("site-7"),
                Value::from("ok"),
                Value::from("raw"),
                Value::from((k % 100) as i64),
            ],
        )
        .unwrap();
        let delta = central.insert("sensors", tuple).unwrap();
        for e in &mut edges {
            e.apply_delta(&delta).unwrap();
        }
    }
    let delta = central.delete_range("sensors", 100, 149).unwrap();
    for e in &mut edges {
        e.apply_delta(&delta).unwrap();
    }
    println!(
        "updates: 20 inserts + one 50-row range delete propagated; lock stats: {:?}",
        central.lock_stats()
    );

    // Every replica is digest-identical to the master.
    let master = central.tree("sensors").unwrap().root_digest().exp;
    for (i, e) in edges.iter().enumerate() {
        assert_eq!(e.tree("sensors").unwrap().root_digest().exp, master);
        println!("edge {i}: replica digest matches master");
    }

    // Queries spanning old and new data verify everywhere.
    let sql = "SELECT a0, a4 FROM sensors WHERE id BETWEEN 9990 AND 10005";
    for (i, e) in edges.iter().enumerate() {
        let (_, resp) = e.query_sql(sql).unwrap();
        let rows = client
            .verify(
                sql,
                &resp,
                central.registry(),
                KeyFreshnessPolicy::RequireCurrent,
            )
            .unwrap();
        println!("edge {i}: answered + verified {} rows", rows.rows.len());
    }

    // ------------------------------------------------------------------
    // Key rotation: edge 2 misses the rotation and serves stale data.
    // ------------------------------------------------------------------
    central.rotate_key(Arc::new(MockSigner::with_version(99, 2)));
    let fresh_edge = EdgeServer::from_bundle(central.bundle());
    let (_, fresh) = fresh_edge.query_sql(sql).unwrap();
    let (_, stale) = edges[2].query_sql(sql).unwrap();
    println!(
        "rotation: fresh edge signs under v{}, lagging edge under v{}",
        fresh.vo.key_version, stale.vo.key_version
    );
    assert!(client
        .verify(
            sql,
            &fresh,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent
        )
        .is_ok());
    match client.verify(
        sql,
        &stale,
        central.registry(),
        KeyFreshnessPolicy::RequireCurrent,
    ) {
        Err(e) => println!("client: stale replica rejected — {e}"),
        Ok(_) => unreachable!("stale key must be rejected under RequireCurrent"),
    }
}
