//! The VBX protocol on real sockets: a central server and an edge
//! server listening on TCP loopback, an edge provisioned entirely over
//! the wire, and a client running a **verified** range query against
//! the edge — then catching it red-handed when it tampers.
//!
//! ```text
//! cargo run --example tcp_serving
//! ```

use std::sync::Arc;
use vbx::prelude::*;
use vbx_edge::net::{bootstrap_edge, replicate_once, sync_stamp};
use vbx_edge::FrameEndpoint;

fn main() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(42, 1));

    // ------------------------------------------------------------------
    // Trusted side: a central server with one table, serving VBX5
    // frames on a TCP port.
    // ------------------------------------------------------------------
    let mut central = CentralServer::new(acc.clone(), signer.clone(), VbTreeConfig::default());
    central.create_table(
        WorkloadSpec {
            table: "sensors".into(),
            ..WorkloadSpec::new(2_000, 4, 10)
        }
        .build(),
    );
    let schema = central.schema("sensors").unwrap().clone();
    let central_ep = Arc::new(CentralEndpoint::new(central));
    let central_srv = NetServer::spawn(
        TcpTransport.listen("127.0.0.1:0").unwrap(),
        central_ep.clone() as Arc<dyn FrameEndpoint>,
    );
    println!("central listening on {}", central_srv.addr());

    // ------------------------------------------------------------------
    // Untrusted side: an edge bootstrapped from the central's bundle
    // *over TCP*, then serving queries on its own port.
    // ------------------------------------------------------------------
    let mut feed = NetClient::connect(&TcpTransport, central_srv.addr()).unwrap();
    let edge = Arc::new(bootstrap_edge(&mut feed, &acc).unwrap());
    sync_stamp(&mut feed, &edge).unwrap();
    let edge_srv = NetServer::spawn(
        TcpTransport.listen("127.0.0.1:0").unwrap(),
        Arc::new(EdgeEndpoint::new(edge.clone())) as Arc<dyn FrameEndpoint>,
    );
    println!("edge    listening on {}", edge_srv.addr());

    // Commit a few updates at the central and tail them over the wire.
    central_ep.with_central(|c| {
        for k in 50_000..50_005u64 {
            let tuple = Tuple::new(
                &schema,
                k,
                vec![
                    Value::from(format!("reading-{k}")),
                    Value::from("site-7"),
                    Value::from("ok"),
                    Value::from((k % 100) as i64),
                ],
            )
            .unwrap();
            c.insert("sensors", tuple).unwrap();
        }
        c.heartbeat();
    });
    feed.subscribe(edge.applied_seq()).unwrap();
    let applied = replicate_once(&mut feed, &edge, 64).unwrap();
    sync_stamp(&mut feed, &edge).unwrap();
    println!("replicated {applied} signed deltas over TCP");

    // ------------------------------------------------------------------
    // The client: query over TCP, trust nothing, verify everything.
    // ------------------------------------------------------------------
    let mut reader = NetClient::connect(&TcpTransport, edge_srv.addr()).unwrap();
    let q = RangeQuery::select_all(100, 160);
    let (owner_seq, owner_clock) = central_ep.with_central(|c| c.owner_position());

    let bytes = reader.query_range("sensors", &q).unwrap();
    let resp = vbx_core::decode_response(&bytes, &acc).unwrap();
    let verified = ClientVerifier::new(&acc, &schema)
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(signer.verifier().as_ref(), &q, &resp)
        .expect("honest edge, fresh stamp");
    println!(
        "verified {} rows over {} response bytes (strict freshness)",
        verified.rows,
        bytes.len()
    );

    // A compromised edge mutates a value; the wire is irrelevant — the
    // VO math catches it at the client.
    edge.set_tamper(TamperMode::MutateValue);
    let bytes = reader.query_range("sensors", &q).unwrap();
    let resp = vbx_core::decode_response(&bytes, &acc).unwrap();
    let verdict = ClientVerifier::new(&acc, &schema)
        .with_freshness(FreshnessPolicy::strict(), owner_seq, owner_clock)
        .verify(signer.verifier().as_ref(), &q, &resp);
    println!("tampered edge verdict: {verdict:?}");
    assert!(verdict.is_err(), "tampering must not verify");

    edge_srv.shutdown();
    central_srv.shutdown();
    println!("both servers drained and shut down cleanly");
}
