//! A realistic edge-computing scenario: a product catalog pushed to CDN
//! edge nodes (the paper's motivating workload — "running applications
//! at the edge cuts down network latency"). Hand-built schema, a
//! secondary VB-tree on price for non-key selections, and BLOB-ish
//! description columns that edge-side projection keeps off the wire.
//!
//! ```text
//! cargo run --example product_catalog
//! ```

use std::sync::Arc;
use vbx::prelude::*;
use vbx_query::secondary::{build_index_table, value_range_query, SecondaryIndexDef};

fn catalog() -> Table {
    let schema = Schema::new(
        "shopdb",
        "products",
        "sku",
        vec![
            ColumnDef::new("name", ColumnType::Text),
            ColumnDef::new("price_cents", ColumnType::Int),
            ColumnDef::new("stock", ColumnType::Int),
            ColumnDef::new("description", ColumnType::Bytes), // the BLOB
        ],
    );
    let mut t = Table::new(schema);
    let names = [
        "anvil", "banjo", "compass", "dynamo", "easel", "flute", "gimbal", "hammer", "inkwell",
        "jigsaw", "kettle", "lantern", "mallet", "nutmeg", "oilcan", "pulley",
    ];
    for sku in 0..400u64 {
        let name = format!("{}-{sku:03}", names[(sku % 16) as usize]);
        let price = 199 + (sku * 137) % 9800;
        let stock = (sku * 31) % 500;
        let blob = vec![0xD0u8; 256]; // stand-in for a rich description
        let row = Tuple::new(
            t.schema(),
            sku,
            vec![
                Value::Text(name),
                Value::Int(price as i64),
                Value::Int(stock as i64),
                Value::Bytes(blob),
            ],
        )
        .unwrap();
        t.insert(row).unwrap();
    }
    t
}

fn main() {
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(2024, 1));
    let mut central = CentralServer::new(acc.clone(), signer.clone(), VbTreeConfig::default());
    let products = catalog();

    // Secondary VB-tree on price (Section 3.1's "one or more VB-trees"),
    // built like any other table at the central server.
    let idx_def = SecondaryIndexDef::new("products", "price_cents");
    let price_index = build_index_table(&idx_def, &products).unwrap();
    central.create_table(products);
    central.create_table(price_index);

    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc.clone());
    println!("catalog: 400 products + price index distributed to the edge\n");

    // 1. A storefront page: SKU range with the BLOB projected away.
    let sql = "SELECT name, price_cents, stock FROM products WHERE sku BETWEEN 100 AND 119";
    let (_, resp) = edge.query_sql(sql).unwrap();
    let size = vbx_core::measure_response(&resp);
    let rows = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    println!("page query: {} rows verified", rows.rows.len());
    println!(
        "  result {} B + VO {} B — the 256 B descriptions never left the edge",
        size.result_bytes, size.vo_bytes
    );

    // 2. A price-band search served from the secondary tree: contiguous
    //    in the index, so the VO stays boundary-sized.
    let tree = edge.tree(&idx_def.name).expect("index replica");
    let q = value_range_query(500, 999);
    let resp = vbx_core::execute(&tree, &q, None);
    let idx_schema = tree.schema().clone();
    let report = ClientVerifier::new(&acc, &idx_schema)
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
    println!(
        "\nprice band $5.00–$9.99: {} products verified via the price index",
        report.rows
    );
    println!(
        "  VO: {} digests ({} B) — contiguous despite being a non-key selection",
        resp.vo.digest_count(),
        vbx_core::measure_response(&resp).vo_bytes
    );

    // 3. The same band as a predicate scan over the primary tree, for
    //    contrast (the paper's "gaps" case).
    let primary = edge.tree("products").unwrap();
    let pred = |t: &Tuple| matches!(t.values[1], Value::Int(v) if (500..=999).contains(&v));
    let scan_q = RangeQuery::project(0, 399, vec![0, 1, 2]);
    let scan = vbx_core::execute(&primary, &scan_q, Some(&pred));
    println!(
        "  same band via primary-tree scan: {} digests ({} B) of gap coverage",
        scan.vo.digest_count(),
        vbx_core::measure_response(&scan).vo_bytes
    );
}
