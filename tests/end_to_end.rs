//! Workspace-level integration tests spanning every crate: the full
//! pipeline over real wire bytes, RSA end-to-end, and three-way scheme
//! comparisons.

use std::sync::Arc;
use vbx::prelude::*;
use vbx_core::{decode_response, encode_response};

#[test]
fn full_pipeline_over_wire_bytes() {
    // Central builds; edge answers; the response crosses a byte
    // boundary; the client decodes and verifies.
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(1, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(WorkloadSpec::new(2_000, 6, 14).build());

    let edge = EdgeServer::from_bundle(central.bundle());
    let sql = "SELECT a0, a5 FROM items WHERE id BETWEEN 250 AND 750";
    let (_, resp) = edge.query_sql(sql).unwrap();

    // Simulate the network.
    let bytes = encode_response(&resp);
    let received = decode_response(&bytes, &acc).unwrap();

    let client = EdgeClient::new(edge.schemas(), acc);
    let rows = client
        .verify(
            sql,
            &received,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 501);
}

#[test]
fn rsa_1024_full_stack() {
    let acc = Acc256::test_default();
    let signer = Arc::new(rsa::fixture_keypair_1024());
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(WorkloadSpec::new(300, 4, 10).build());

    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc);
    let sql = "SELECT * FROM items WHERE id < 50";
    let (_, resp) = edge.query_sql(sql).unwrap();
    // RSA-1024 signatures are 128 bytes; the VO reflects that.
    assert!(resp.vo.top.sig.len() == 128);
    let rows = client
        .verify(
            sql,
            &resp,
            central.registry(),
            KeyFreshnessPolicy::RequireCurrent,
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 50);
}

#[test]
fn three_schemes_agree_on_honest_data() {
    let table = WorkloadSpec::new(500, 5, 12).build();
    let acc = Acc256::test_default();
    let signer = MockSigner::new(3);

    let tree: vbx_core::VbTree<4> =
        vbx_core::VbTree::bulk_load(&table, VbTreeConfig::default(), acc.clone(), &signer);
    let naive = NaiveAuthStore::build(&table, acc.clone(), &signer);
    let merkle = MerkleAuthStore::build(&table, &signer);

    let (lo, hi) = (100u64, 199u64);
    let q = RangeQuery::select_all(lo, hi);
    let vb_resp = execute(&tree, &q, None);
    let naive_resp = naive.query(lo, hi, None, None);
    let merkle_resp = merkle.query(lo, hi);

    assert_eq!(vb_resp.rows.len(), 100);
    assert_eq!(naive_resp.rows.len(), 100);
    assert_eq!(merkle_resp.rows.len(), 100);

    let verifier = signer.verifier();
    ClientVerifier::new(&acc, table.schema())
        .verify(verifier.as_ref(), &q, &vb_resp)
        .unwrap();
    NaiveAuthStore::verify(
        &acc,
        table.schema(),
        verifier.as_ref(),
        lo,
        hi,
        None,
        &naive_resp,
    )
    .unwrap();
    MerkleAuthStore::verify(table.schema(), verifier.as_ref(), lo, hi, &merkle_resp).unwrap();

    // Same rows from all three.
    for ((v, n), m) in vb_resp
        .rows
        .iter()
        .zip(&naive_resp.rows)
        .zip(&merkle_resp.rows)
    {
        assert_eq!(v.key, n.key);
        assert_eq!(v.key, m.key);
        assert_eq!(v.values, m.values);
    }
}

#[test]
fn comparative_wire_sizes_match_paper_ordering() {
    // Figure 10's ordering at the measured scale: Naive ships the most
    // authentication bytes; the VB-tree's VO overhead is result-local.
    let table = WorkloadSpec::new(2_000, 10, 20).build();
    let acc = Acc256::test_default();
    let signer = MockSigner::new(4);
    let tree: vbx_core::VbTree<4> =
        vbx_core::VbTree::bulk_load(&table, VbTreeConfig::default(), acc.clone(), &signer);
    let naive = NaiveAuthStore::build(&table, acc.clone(), &signer);

    for hi in [199u64, 999, 1999] {
        let q = RangeQuery::select_all(0, hi);
        let vb = vbx_core::measure_response(&execute(&tree, &q, None)).total();
        let nv = naive.query(0, hi, None, None).wire_bytes();
        assert!(nv > vb, "hi {hi}: naive {nv} vs vbtree {vb}");
    }
}

#[test]
fn analysis_predicts_measured_tree_shape() {
    // The geometry formulas must describe the real tree exactly.
    let p = vbx_analysis::Params {
        n_r: 5_000,
        ..vbx_analysis::Params::default()
    };
    let table = WorkloadSpec::new(5_000, 10, 20).build();
    let signer = MockSigner::new(5);
    let tree: vbx_core::VbTree<4> = vbx_core::VbTree::bulk_load(
        &table,
        VbTreeConfig::default(),
        Acc256::test_default(),
        &signer,
    );
    let stats = tree.stats();
    assert_eq!(stats.fanout, vbx_analysis::tree::vbtree_fanout(&p));
    assert_eq!(stats.height, vbx_analysis::tree::vbtree_height(&p));
    assert_eq!(
        stats.nodes as u64,
        vbx_analysis::tree::packed_node_count(stats.fanout, 5_000)
    );
}

#[test]
fn concurrent_edges_serve_while_central_updates() {
    // Queries against existing replicas proceed while the central
    // server runs update transactions (the replicas are snapshots; the
    // lock protocol serialises only co-located work — Section 3.4).
    let acc = Acc256::test_default();
    let signer = Arc::new(MockSigner::with_version(11, 1));
    let mut central = CentralServer::new(acc.clone(), signer, VbTreeConfig::default());
    central.create_table(WorkloadSpec::new(1_000, 4, 10).build());
    let edge = EdgeServer::from_bundle(central.bundle());
    let client = EdgeClient::new(edge.schemas(), acc);

    // The clients' copy of the well-known key directory (published
    // before the scope; the writer does not rotate keys here).
    let mut registry = KeyRegistry::new();
    registry.publish(MockSigner::with_version(11, 1).verifier(), 0);

    std::thread::scope(|s| {
        let edge_ref = &edge;
        let client_ref = &client;
        let registry_ref = &registry;
        let central_ref = &mut central;

        let reader = s.spawn(move || {
            let mut verified = 0usize;
            for i in 0..20u64 {
                let lo = i * 40;
                let sql = format!("SELECT * FROM items WHERE id BETWEEN {lo} AND {}", lo + 39);
                let (_, resp) = edge_ref.query_sql(&sql).unwrap();
                if client_ref
                    .verify(&sql, &resp, registry_ref, KeyFreshnessPolicy::AcceptAsOf(0))
                    .is_ok()
                {
                    verified += 1;
                }
            }
            verified
        });

        let writer = s.spawn(move || {
            let schema = central_ref.tree("items").unwrap().schema().clone();
            for k in 5_000..5_030u64 {
                let t = Tuple::new(
                    &schema,
                    k,
                    vec![
                        Value::from("w"),
                        Value::from("x"),
                        Value::from("y"),
                        Value::from(1i64),
                    ],
                )
                .unwrap();
                central_ref.insert("items", t).unwrap();
            }
            central_ref.clock()
        });

        let verified = reader.join().unwrap();
        let clock = writer.join().unwrap();
        assert_eq!(verified, 20);
        assert_eq!(clock, 30);
    });
}
