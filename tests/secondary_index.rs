//! Secondary VB-trees end-to-end: selections on a non-key attribute
//! served from a value-ordered tree produce contiguous results with
//! small VOs, versus the gap-riddled VO of a predicate scan over the
//! primary tree — the trade-off Section 3.3 describes for non-key
//! selection, and the reason Section 3.1 allows "one or more VB-trees"
//! per table.

use vbx::prelude::*;
use vbx_query::secondary::{build_index_table, value_range_query, SecondaryIndexDef};

#[test]
fn secondary_tree_shrinks_non_key_selection_vos() {
    let base = WorkloadSpec::new(2_000, 4, 10).build(); // a3: Int in 0..100
    let signer = MockSigner::new(21);
    let acc = Acc256::test_default();

    // Primary tree + predicate scan (non-key selection with gaps).
    let primary: VbTree<4> =
        VbTree::bulk_load(&base, VbTreeConfig::default(), acc.clone(), &signer);
    let pred = |t: &Tuple| matches!(t.values[3], Value::Int(v) if (10..=14).contains(&v));
    let scan_q = RangeQuery::select_all(0, 1_999);
    let scan = execute(&primary, &scan_q, Some(&pred));

    // Secondary tree + contiguous range on the composite key.
    let def = SecondaryIndexDef::new("items", "a3");
    let idx_table = build_index_table(&def, &base).unwrap();
    let secondary: VbTree<4> =
        VbTree::bulk_load(&idx_table, VbTreeConfig::default(), acc.clone(), &signer);
    let idx_q = value_range_query(10, 14);
    let idx = execute(&secondary, &idx_q, None);

    // Same logical rows.
    assert_eq!(scan.rows.len(), idx.rows.len());
    assert!(!scan.rows.is_empty());

    // Both verify against their respective schemas.
    use vbx_crypto::Signer as _;
    let verifier = signer.verifier();
    ClientVerifier::new(&acc, base.schema())
        .verify(verifier.as_ref(), &scan_q, &scan)
        .unwrap();
    ClientVerifier::new(&acc, idx_table.schema())
        .verify(verifier.as_ref(), &idx_q, &idx)
        .unwrap();

    // The point: the predicate scan's D_S carries one signed digest per
    // gap tuple (~95% of the table); the secondary tree's D_S carries
    // only envelope boundaries.
    assert!(
        scan.vo.d_s.len() > 5 * idx.vo.d_s.len(),
        "scan D_S = {} vs index D_S = {}",
        scan.vo.d_s.len(),
        idx.vo.d_s.len()
    );
    let scan_bytes = vbx_core::measure_response(&scan).vo_bytes;
    let idx_bytes = vbx_core::measure_response(&idx).vo_bytes;
    assert!(
        scan_bytes > 5 * idx_bytes,
        "scan VO {scan_bytes} B vs index VO {idx_bytes} B"
    );
}

#[test]
fn secondary_tree_root_covers_same_tuple_multiset() {
    // A cute corollary of commutativity: because the derived rows carry
    // an extra pk column and a different table name, digests differ from
    // the primary tree's — but the secondary tree is internally
    // consistent under any shape.
    let base = WorkloadSpec::new(300, 3, 8).build();
    let signer = MockSigner::new(22);
    let acc = Acc256::test_default();
    let def = SecondaryIndexDef::new("items", "a2");
    let idx_table = build_index_table(&def, &base).unwrap();
    for fanout in [4usize, 23, 114] {
        let tree: VbTree<4> = VbTree::bulk_load(
            &idx_table,
            VbTreeConfig::with_fanout(fanout),
            acc.clone(),
            &signer,
        );
        tree.check_integrity(None).unwrap();
    }
    // Shape-independence of the root exponent.
    let t1: VbTree<4> = VbTree::bulk_load(
        &idx_table,
        VbTreeConfig::with_fanout(4),
        acc.clone(),
        &signer,
    );
    let t2: VbTree<4> = VbTree::bulk_load(
        &idx_table,
        VbTreeConfig::with_fanout(50),
        acc.clone(),
        &signer,
    );
    assert_eq!(t1.root_digest().exp, t2.root_digest().exp);
}

#[test]
fn duplicate_values_supported() {
    // Many rows share a3 values (0..100 over 2000 rows): the composite
    // key disambiguates by primary key and point-value queries return
    // every duplicate.
    let base = WorkloadSpec::new(500, 4, 10).build();
    let signer = MockSigner::new(23);
    let acc = Acc256::test_default();
    let def = SecondaryIndexDef::new("items", "a3");
    let idx_table = build_index_table(&def, &base).unwrap();
    let tree: VbTree<4> =
        VbTree::bulk_load(&idx_table, VbTreeConfig::default(), acc.clone(), &signer);

    let expected = base
        .iter()
        .filter(|r| matches!(r.values[3], Value::Int(7)))
        .count();
    let q = value_range_query(7, 7);
    let resp = execute(&tree, &q, None);
    assert_eq!(resp.rows.len(), expected);
    use vbx_crypto::Signer as _;
    ClientVerifier::new(&acc, idx_table.schema())
        .verify(signer.verifier().as_ref(), &q, &resp)
        .unwrap();
}
