//! Differential fuzz test: a seeded, deterministic stream of random
//! updates, queries, and tamper attempts replayed through `VbScheme`,
//! `NaiveScheme`, and `MerkleScheme` via the one `AuthScheme` trait.
//!
//! Every scheme sees the identical operation stream (owner-side
//! `update` → signed payload → replica-side `apply_delta`, then range
//! queries against the replica). The invariants:
//!
//! * **identical result rows** — every scheme returns the same
//!   `(key, values)` list for every query;
//! * **identical accept/reject verdicts** — for honest responses
//!   (accept, always) and for the tamper modes every scheme detects
//!   (`MutateValue`, `InjectRow`; the modes where the published
//!   detection matrices *differ* — silent drops — are covered by
//!   `tamper_matrix.rs` and are deliberately excluded here).
//!
//! The seed is fixed, so a failure reproduces exactly in CI.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;
use vbx::prelude::*;

const SEED: u64 = 0xD1FF_2026;
const OPS: usize = 60;
const INITIAL_ROWS: u64 = 80;

/// One scheme's owner + replica pair, driven through the trait only.
struct Rig<S: AuthScheme> {
    scheme: S,
    master: S::Store,
    replica: S::Store,
    schema: Schema,
    signer: MockSigner,
}

impl<S: AuthScheme> Rig<S> {
    fn new(scheme: S, table: &Table, signer: MockSigner) -> Self {
        let master = scheme.build(table, &signer);
        let replica = scheme.build(table, &signer);
        Self {
            scheme,
            master,
            replica,
            schema: table.schema().clone(),
            signer,
        }
    }
}

/// Rows as compared across schemes: `(key, debug-rendered values)`.
type RowSet = Vec<(u64, String)>;

/// Object-safe view over a rig so all three schemes run in one loop.
trait DiffRig {
    fn name(&self) -> &'static str;
    /// Owner-side update, signed payload, replica replay.
    fn apply(&mut self, op: &UpdateOp);
    /// Serve `q` from the replica, optionally tamper, verify
    /// client-side. Returns the (key, row-debug) list and the verdict.
    fn run(&self, q: &RangeQuery, tamper: &TamperMode) -> (RowSet, bool);
}

impl<S: AuthScheme> DiffRig for Rig<S> {
    fn name(&self) -> &'static str {
        S::NAME
    }

    fn apply(&mut self, op: &UpdateOp) {
        let payload = self
            .scheme
            .update(&mut self.master, op, &self.signer)
            .unwrap_or_else(|e| panic!("{}: owner update failed: {e}", S::NAME));
        self.scheme
            .apply_delta(&mut self.replica, op, &payload, self.signer.key_version())
            .unwrap_or_else(|e| panic!("{}: replica replay failed: {e}", S::NAME));
    }

    fn run(&self, q: &RangeQuery, tamper: &TamperMode) -> (RowSet, bool) {
        let mut resp = self.scheme.range_query(&self.replica, q);
        self.scheme.tamper(&self.replica, q, &mut resp, tamper);
        let mut meter = CostMeter::new();
        let verified = self.scheme.verify(
            &self.schema,
            self.signer.verifier().as_ref(),
            q,
            &resp,
            &mut meter,
        );
        match verified {
            Ok(batch) => (
                batch
                    .rows
                    .iter()
                    .map(|r| (r.key, format!("{:?}", r.values)))
                    .collect(),
                true,
            ),
            Err(_) => (Vec::new(), false),
        }
    }
}

fn fresh_tuple(schema: &Schema, key: u64, salt: u64) -> Tuple {
    Tuple::new(
        schema,
        key,
        vec![
            Value::from(format!("v{key}")),
            Value::from(format!("s{salt}")),
            Value::from(format!("t{}", salt % 13)),
            Value::from((salt % 101) as i64),
        ],
    )
    .expect("schema-conformant tuple")
}

#[test]
fn three_schemes_agree_on_rows_and_verdicts() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let table = WorkloadSpec::new(INITIAL_ROWS, 4, 10).build();
    let schema = table.schema().clone();
    let acc = Acc256::test_default();

    let mut rigs: Vec<Box<dyn DiffRig>> = vec![
        Box::new(Rig::new(
            VbScheme::new(acc.clone(), VbTreeConfig::with_fanout(5)),
            &table,
            MockSigner::with_version(3, 1),
        )),
        Box::new(Rig::new(
            NaiveScheme::<4>::new(acc.clone()),
            &table,
            MockSigner::with_version(3, 1),
        )),
        Box::new(Rig::new(
            MerkleScheme,
            &table,
            MockSigner::with_version(3, 1),
        )),
    ];

    // The driver mirrors the live key set so generated deletes always
    // target existing keys (all schemes see the identical stream).
    let mut live: BTreeSet<u64> = (0..INITIAL_ROWS).collect();
    let mut next_key = 10_000u64;
    let key_span = || 12_000u64;

    for step in 0..OPS {
        // --- one random update, replayed through every scheme ---
        let op = match rng.gen_range(0..10u32) {
            0..=4 => {
                let key = next_key;
                next_key += 1 + rng.gen_range(0..5u64);
                live.insert(key);
                UpdateOp::Insert(fresh_tuple(&schema, key, rng.gen_range(0..1_000)))
            }
            5..=7 => {
                let idx = rng.gen_range(0..live.len());
                let key = *live.iter().nth(idx).expect("non-empty");
                live.remove(&key);
                UpdateOp::Delete(key)
            }
            _ => {
                let lo = rng.gen_range(0..key_span());
                let hi = lo + rng.gen_range(0..40u64);
                live.retain(|k| *k < lo || *k > hi);
                UpdateOp::DeleteRange(lo, hi)
            }
        };
        for rig in &mut rigs {
            rig.apply(&op);
        }

        // --- one random query, honest + universally-detected tampers ---
        let lo = rng.gen_range(0..key_span());
        let q = RangeQuery::select_all(lo, lo + rng.gen_range(1..200u64));
        let expected_rows: Vec<u64> = live.range(q.lo..=q.hi).copied().collect();

        for tamper in [
            TamperMode::None,
            TamperMode::MutateValue,
            TamperMode::InjectRow,
        ] {
            let results: Vec<(&'static str, RowSet, bool)> = rigs
                .iter()
                .map(|r| {
                    let (rows, ok) = r.run(&q, &tamper);
                    (r.name(), rows, ok)
                })
                .collect();

            // Verdicts identical across all three schemes.
            let verdicts: Vec<bool> = results.iter().map(|(_, _, ok)| *ok).collect();
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "step {step} {tamper:?} [{q:?}]: verdicts diverge: {:?}",
                results
                    .iter()
                    .map(|(n, _, ok)| (*n, *ok))
                    .collect::<Vec<_>>()
            );

            match &tamper {
                TamperMode::None => {
                    // Honest responses always verify, with identical rows
                    // that match the reference model.
                    assert!(verdicts[0], "step {step}: honest response rejected");
                    let keys: Vec<u64> = results[0].1.iter().map(|(k, _)| *k).collect();
                    assert_eq!(
                        keys, expected_rows,
                        "step {step}: vb-tree rows diverge from the reference model"
                    );
                    for (name, rows, _) in &results[1..] {
                        assert_eq!(
                            rows, &results[0].1,
                            "step {step}: {name} rows differ from vb-tree"
                        );
                    }
                }
                _ => {
                    // MutateValue / InjectRow are no-ops on empty results
                    // (accepted by everyone); otherwise every scheme
                    // detects them.
                    let should_detect = !expected_rows.is_empty();
                    assert_eq!(
                        verdicts[0], !should_detect,
                        "step {step} {tamper:?}: expected detected={should_detect}"
                    );
                }
            }
        }
    }

    assert!(!live.is_empty(), "stream should leave data behind");
}
